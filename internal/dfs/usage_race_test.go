// External test package so the race test can drive the dfs read path
// through the faults injector (faults imports dfs; an internal test would
// cycle).
package dfs_test

import (
	"fmt"
	"sync"
	"testing"

	"ping/internal/dfs"
	"ping/internal/faults"
)

// TestUsageSnapshotConsistentUnderConcurrentReads hammers the read path
// with injected failures from many goroutines while other goroutines
// take Usage snapshots. Every snapshot must be internally consistent:
// a read attempt and its outcome are recorded in one critical section,
// so NodeReadErrors[i] <= NodeReads[i] must hold in every snapshot, and
// counters must be monotone across snapshots. Run under -race this also
// proves the health counters share one properly-locked home.
func TestUsageSnapshotConsistentUnderConcurrentReads(t *testing.T) {
	fs := dfs.New(dfs.Config{
		BlockSize:   128,
		DataNodes:   4,
		Replication: 2,
		MaxRetries:  1,
		RetryBase:   -1,
	})
	var paths []string
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("f%d", i)
		data := make([]byte, 1000+i*37)
		for j := range data {
			data[j] = byte(i + j)
		}
		if err := fs.WriteFile(p, data); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	// Replication 2 keeps every block readable, so reads succeed while
	// still exercising the failure/failover accounting.
	in := faults.New(faults.Plan{Seed: 99, Nodes: map[int]faults.NodePlan{
		0: {ReadErrorRate: 0.5},
		1: {CorruptRate: 0.3},
		2: {ReadErrorRate: 0.2, CorruptRate: 0.2},
	}})
	in.Attach(fs)

	const readers, snapshots, rounds = 8, 4, 50
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Errors are expected: the plan is aggressive enough that
				// some reads exhaust every replica and retry. The test
				// asserts accounting consistency, not read success.
				p := paths[(r+i)%len(paths)]
				_, _ = fs.ReadFile(p)
			}
		}(r)
	}
	for s := 0; s < snapshots; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prevReads, prevErrs, prevFailed int64
			for i := 0; i < rounds; i++ {
				u := fs.Usage()
				if len(u.NodeReads) != 4 || len(u.NodeReadErrors) != 4 {
					t.Errorf("snapshot has %d/%d node slots, want 4/4", len(u.NodeReads), len(u.NodeReadErrors))
					return
				}
				var reads, errs int64
				for n := range u.NodeReads {
					if u.NodeReadErrors[n] > u.NodeReads[n] {
						t.Errorf("node %d: %d errors > %d reads — snapshot tore", n, u.NodeReadErrors[n], u.NodeReads[n])
						return
					}
					reads += u.NodeReads[n]
					errs += u.NodeReadErrors[n]
				}
				// A failed block read implies at least that many failed
				// attempts were recorded in the same snapshot.
				if u.FailedBlockReads > errs {
					t.Errorf("%d failed block reads > %d attempt errors — snapshot tore", u.FailedBlockReads, errs)
					return
				}
				if reads < prevReads || errs < prevErrs || u.FailedBlockReads < prevFailed {
					t.Errorf("counters went backwards: reads %d->%d errs %d->%d failed %d->%d",
						prevReads, reads, prevErrs, errs, prevFailed, u.FailedBlockReads)
					return
				}
				prevReads, prevErrs, prevFailed = reads, errs, u.FailedBlockReads
			}
		}()
	}
	wg.Wait()

	u := fs.Usage()
	var total, errs int64
	for n := range u.NodeReads {
		total += u.NodeReads[n]
		errs += u.NodeReadErrors[n]
	}
	if total == 0 {
		t.Fatal("no read attempts recorded")
	}
	if errs == 0 {
		t.Fatal("fault plan injected no errors — test exercised nothing")
	}
}
