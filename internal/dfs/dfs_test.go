package dfs

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"
)

func TestWriteReadSmall(t *testing.T) {
	fs := New(Config{})
	want := []byte("hello dfs")
	if err := fs.WriteFile("a/b/c.txt", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("a/b/c.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read %q, want %q", got, want)
	}
}

func TestMultiBlockRoundTrip(t *testing.T) {
	fs := New(Config{BlockSize: 128, DataNodes: 3, Replication: 2})
	rng := rand.New(rand.NewSource(5))
	want := make([]byte, 10_000)
	rng.Read(want)
	if err := fs.WriteFile("big.bin", want); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len(want)) {
		t.Errorf("Size = %d, want %d", info.Size, len(want))
	}
	wantBlocks := (len(want) + 127) / 128
	if info.Blocks != wantBlocks {
		t.Errorf("Blocks = %d, want %d", info.Blocks, wantBlocks)
	}
	got, err := fs.ReadFile("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("multi-block content mismatch")
	}
}

func TestReplicationAccounting(t *testing.T) {
	fs := New(Config{BlockSize: 100, DataNodes: 4, Replication: 3})
	data := make([]byte, 1000)
	if err := fs.WriteFile("r.bin", data); err != nil {
		t.Fatal(err)
	}
	u := fs.Usage()
	if u.LogicalBytes != 1000 {
		t.Errorf("LogicalBytes = %d", u.LogicalBytes)
	}
	if u.PhysicalBytes != 3000 {
		t.Errorf("PhysicalBytes = %d, want 3000 (3 replicas)", u.PhysicalBytes)
	}
	if len(u.NodeBytes) != 4 {
		t.Errorf("NodeBytes has %d nodes", len(u.NodeBytes))
	}
	var spread int
	for _, nb := range u.NodeBytes {
		if nb > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("blocks landed on %d node(s); want spread across >= 2", spread)
	}
}

func TestOverwriteReleasesBlocks(t *testing.T) {
	fs := New(Config{BlockSize: 64, DataNodes: 2})
	if err := fs.WriteFile("f", make([]byte, 640)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("f", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	u := fs.Usage()
	if u.LogicalBytes != 64 || u.PhysicalBytes != 64 {
		t.Errorf("after overwrite: logical=%d physical=%d, want 64/64", u.LogicalBytes, u.PhysicalBytes)
	}
	got, err := fs.ReadFile("f")
	if err != nil || len(got) != 64 {
		t.Errorf("ReadFile after overwrite: len=%d err=%v", len(got), err)
	}
}

func TestRemove(t *testing.T) {
	fs := New(Config{})
	if err := fs.WriteFile("x", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("x") {
		t.Error("file still exists after Remove")
	}
	if err := fs.Remove("x"); !os.IsNotExist(err) {
		t.Errorf("second Remove error = %v, want not-exist", err)
	}
	if u := fs.Usage(); u.PhysicalBytes != 0 || u.Files != 0 {
		t.Errorf("usage after remove: %+v", u)
	}
}

func TestOpenMissing(t *testing.T) {
	fs := New(Config{})
	if _, err := fs.Open("nope"); !os.IsNotExist(err) {
		t.Errorf("Open(missing) = %v, want not-exist", err)
	}
	if _, err := fs.Stat("nope"); !os.IsNotExist(err) {
		t.Errorf("Stat(missing) = %v, want not-exist", err)
	}
}

func TestList(t *testing.T) {
	fs := New(Config{})
	for _, p := range []string{"L1/p1.pcol", "L1/p2.pcol", "L2/p1.pcol", "idx/vp"} {
		if err := fs.WriteFile(p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List("L1/")
	if len(got) != 2 || got[0].Path != "L1/p1.pcol" || got[1].Path != "L1/p2.pcol" {
		t.Errorf("List(L1/) = %+v", got)
	}
	if all := fs.List(""); len(all) != 4 {
		t.Errorf("List(\"\") returned %d files", len(all))
	}
}

func TestPathCleaning(t *testing.T) {
	fs := New(Config{})
	if err := fs.WriteFile("/a//b/../c", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("a/c") {
		t.Error("cleaned path a/c not found")
	}
}

func TestEmptyPathRejected(t *testing.T) {
	fs := New(Config{})
	if _, err := fs.Create(""); err == nil {
		t.Error("Create(\"\") succeeded")
	}
}

func TestWriteAfterClose(t *testing.T) {
	fs := New(Config{})
	w, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("late")); err == nil {
		t.Error("Write after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestVisibilityOnlyAfterClose(t *testing.T) {
	fs := New(Config{})
	w, _ := fs.Create("pending")
	if _, err := w.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("pending") {
		t.Error("file visible before Close")
	}
	w.Close()
	if !fs.Exists("pending") {
		t.Error("file not visible after Close")
	}
}

func TestBytesReadAccounting(t *testing.T) {
	fs := New(Config{BlockSize: 50})
	if err := fs.WriteFile("f", make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	before := fs.BytesRead()
	if _, err := fs.ReadFile("f"); err != nil {
		t.Fatal(err)
	}
	if got := fs.BytesRead() - before; got != 500 {
		t.Errorf("BytesRead delta = %d, want 500", got)
	}
}

func TestOnDiskBackend(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewOnDisk(dir, Config{BlockSize: 64, DataNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 300)
	for i := range want {
		want[i] = byte(i)
	}
	if err := fs.WriteFile("disk.bin", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("disk.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("on-disk content mismatch")
	}
	// Blocks should exist under node dirs.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("expected 2 node dirs, found %d", len(entries))
	}
	if err := fs.Remove("disk.bin"); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	fs := New(Config{BlockSize: 128, DataNodes: 4})
	var wg sync.WaitGroup
	const n = 16
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(i)}, 1000)
			if err := fs.WriteFile(fmt.Sprintf("f%d", i), data); err != nil {
				t.Errorf("write f%d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		got, err := fs.ReadFile(fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatalf("read f%d: %v", i, err)
		}
		for _, b := range got {
			if b != byte(i) {
				t.Fatalf("f%d corrupted", i)
			}
		}
	}
}

func TestReaderIsStreamable(t *testing.T) {
	fs := New(Config{BlockSize: 10})
	if err := fs.WriteFile("s", []byte("0123456789abcdefghij")); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("s")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 7)
	var all []byte
	for {
		n, err := r.Read(buf)
		all = append(all, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if string(all) != "0123456789abcdefghij" {
		t.Errorf("streamed read = %q", all)
	}
}
