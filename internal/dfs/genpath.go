package dfs

import (
	"fmt"
	"strings"
)

// GenPath derives the generation-suffixed variant of a file path:
// generation 0 is the path itself (the name a fresh writer uses), and
// generation g > 0 inserts ".g<g>" before the final extension, so
// successive rewrites of one logical file land under distinct names:
//
//	GenPath("levels/L01/p3.pcol", 0) = "levels/L01/p3.pcol"
//	GenPath("levels/L01/p3.pcol", 2) = "levels/L01/p3.g2.pcol"
//
// Writers that publish immutable snapshots (hpart's epoch store) rewrite
// a file by creating the next generation under a new name and retiring
// the old one once no reader can still need it, so in-flight readers
// keep a consistent view without any locking on the read path.
func GenPath(path string, gen uint64) string {
	if gen == 0 {
		return path
	}
	if dot := strings.LastIndexByte(path, '.'); dot > strings.LastIndexByte(path, '/') {
		return fmt.Sprintf("%s.g%d%s", path[:dot], gen, path[dot:])
	}
	return fmt.Sprintf("%s.g%d", path, gen)
}
