package dfs

import "testing"

func TestGenPath(t *testing.T) {
	cases := []struct {
		path string
		gen  uint64
		want string
	}{
		{"levels/L01/p3.pcol", 0, "levels/L01/p3.pcol"},
		{"levels/L01/p3.pcol", 1, "levels/L01/p3.g1.pcol"},
		{"levels/L01/p3.pcol", 42, "levels/L01/p3.g42.pcol"},
		{"noext", 2, "noext.g2"},
		{"dir.v2/noext", 3, "dir.v2/noext.g3"},
		{"dir.v2/file.bin", 3, "dir.v2/file.g3.bin"},
	}
	for _, c := range cases {
		if got := GenPath(c.path, c.gen); got != c.want {
			t.Errorf("GenPath(%q, %d) = %q, want %q", c.path, c.gen, got, c.want)
		}
	}
}

// TestGenPathDistinct: distinct generations of one path never collide,
// and never collide with the base path — the invariant the epoch store's
// retire-then-GC protocol relies on.
func TestGenPathDistinct(t *testing.T) {
	seen := map[string]bool{}
	for gen := uint64(0); gen < 20; gen++ {
		p := GenPath("levels/L01/p3.pcol", gen)
		if seen[p] {
			t.Fatalf("generation %d collides: %q", gen, p)
		}
		seen[p] = true
	}
}
