package dfs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// manifestName is where a disk-backed FS persists its namenode state so a
// later process can reopen the store.
const manifestName = "manifest.json"

type manifestFile struct {
	Path   string          `json:"path"`
	Size   int64           `json:"size"`
	Blocks []manifestBlock `json:"blocks"`
}

type manifestBlock struct {
	ID    uint64 `json:"id"`
	Size  int64  `json:"size"`
	Nodes []int  `json:"nodes"`
	// CRC is the block payload checksum; HasCRC distinguishes a real
	// checksum from a manifest written before checksums existed (those
	// blocks are read unverified).
	CRC    uint32 `json:"crc,omitempty"`
	HasCRC bool   `json:"has_crc,omitempty"`
}

type manifest struct {
	Config    Config         `json:"config"`
	NextBlock uint64         `json:"next_block"`
	Files     []manifestFile `json:"files"`
}

// SaveManifest persists the namenode state. It only applies to disk-backed
// file systems (the in-memory backend has nothing durable to reopen).
func (f *FS) SaveManifest() error {
	ds, ok := f.store.(*diskStore)
	if !ok {
		return fmt.Errorf("dfs: SaveManifest requires an on-disk store")
	}
	f.mu.RLock()
	m := manifest{Config: f.cfg, NextBlock: f.nextBlock}
	for path, meta := range f.files {
		mf := manifestFile{Path: path, Size: meta.size}
		for _, b := range meta.blocks {
			mf.Blocks = append(mf.Blocks, manifestBlock{
				ID: b.id, Size: b.size, Nodes: b.nodes,
				CRC: b.crc, HasCRC: b.hasCRC,
			})
		}
		m.Files = append(m.Files, mf)
	}
	f.mu.RUnlock()
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("dfs: %w", err)
	}
	return os.WriteFile(filepath.Join(ds.dir, manifestName), data, 0o644)
}

// OpenOnDisk reopens a disk-backed file system previously populated and
// saved with SaveManifest.
func OpenOnDisk(dir string) (*FS, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("dfs: open manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dfs: parse manifest: %w", err)
	}
	fs, err := NewOnDisk(dir, m.Config)
	if err != nil {
		return nil, err
	}
	fs.nextBlock = m.NextBlock
	for _, mf := range m.Files {
		meta := fileMeta{size: mf.Size}
		for _, b := range mf.Blocks {
			meta.blocks = append(meta.blocks, blockMeta{
				id: b.ID, size: b.Size, nodes: b.Nodes,
				crc: b.CRC, hasCRC: b.HasCRC,
			})
			for _, n := range b.Nodes {
				if n < 0 || n >= len(fs.nodeBytes) {
					return nil, fmt.Errorf("dfs: manifest references node %d of %d", n, len(fs.nodeBytes))
				}
				fs.nodeBytes[n] += b.Size
			}
		}
		fs.files[mf.Path] = meta
	}
	return fs, nil
}
