package cs

import (
	"ping/internal/rdf"
)

// Estimator implements the original application of characteristic sets —
// accurate cardinality estimation for star queries (Neumann & Moerkotte,
// ICDE'11), which the paper builds its partitioning on. Per CS it keeps
// the number of subjects and, per property, the number of triples; the
// cardinality of a star pattern over properties P is then
//
//	Σ_{cs ⊇ P} count(cs) · Π_{p ∈ P} triples(cs, p) / count(cs)
//
// which is *exact* when, within a CS, each subject carries the same
// number of triples per property, and a tight estimate otherwise.
type Estimator struct {
	h *Hierarchy
	// subjects[i] is the number of subjects with Sets[i].
	subjects []int64
	// triples[i][p] counts the triples with property p under Sets[i].
	triples []map[rdf.ID]int64
}

// NewEstimator builds statistics from a graph in one pass.
func NewEstimator(g *rdf.Graph) *Estimator {
	csBySubject := Extract(g)
	h := Build(csBySubject)
	e := &Estimator{
		h:        h,
		subjects: make([]int64, len(h.Sets)),
		triples:  make([]map[rdf.ID]int64, len(h.Sets)),
	}
	for i := range e.triples {
		e.triples[i] = make(map[rdf.ID]int64)
	}
	nodeBySubject := make(map[rdf.ID]int, len(csBySubject))
	for s, set := range csBySubject {
		node := h.NodeOf(set)
		nodeBySubject[s] = node
		e.subjects[node]++
	}
	for _, t := range g.Triples {
		e.triples[nodeBySubject[t.S]][t.P]++
	}
	return e
}

// Hierarchy returns the hierarchy the statistics are organized by.
func (e *Estimator) Hierarchy() *Hierarchy { return e.h }

// DistinctSubjects returns the exact number of subjects whose CS contains
// every given property — the cardinality of SELECT DISTINCT ?s for the
// star query (this count is exact by construction).
func (e *Estimator) DistinctSubjects(props []rdf.ID) int64 {
	want := NewSet(props)
	var total int64
	for i, set := range e.h.Sets {
		if want.SubsetOf(set) {
			total += e.subjects[i]
		}
	}
	return total
}

// EstimateStar estimates the result cardinality of a star query whose
// patterns use the given properties with distinct object variables.
func (e *Estimator) EstimateStar(props []rdf.ID) float64 {
	if len(props) == 0 {
		return 0
	}
	want := NewSet(props)
	var total float64
	for i, set := range e.h.Sets {
		if !want.SubsetOf(set) {
			continue
		}
		n := float64(e.subjects[i])
		rows := n
		for _, p := range want.Props() {
			rows *= float64(e.triples[i][p]) / n
		}
		total += rows
	}
	return total
}

// PropertyTriples returns the total number of triples with the property —
// the extent of its vertical partition.
func (e *Estimator) PropertyTriples(p rdf.ID) int64 {
	var total int64
	for i := range e.h.Sets {
		total += e.triples[i][p]
	}
	return total
}
