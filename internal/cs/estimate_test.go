package cs

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ping/internal/rdf"
)

// starCount is the brute-force row count of a star query over props with
// distinct object variables: Σ_subjects Π_p |objects(s, p)|.
func starCount(g *rdf.Graph, props []rdf.ID) int64 {
	counts := make(map[rdf.ID]map[rdf.ID]int64) // subject -> prop -> #objects
	for _, t := range g.Triples {
		if counts[t.S] == nil {
			counts[t.S] = make(map[rdf.ID]int64)
		}
		counts[t.S][t.P]++
	}
	var total int64
	for _, perProp := range counts {
		rows := int64(1)
		ok := true
		for _, p := range props {
			if perProp[p] == 0 {
				ok = false
				break
			}
			rows *= perProp[p]
		}
		if ok {
			total += rows
		}
	}
	return total
}

func estGraph(seed int64) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	for s := 0; s < 200; s++ {
		subj := rdf.NewIRI(fmt.Sprintf("s%d", s))
		depth := 1 + rng.Intn(4)
		for p := 0; p < depth; p++ {
			// 1-3 triples per property (multiplicities matter for the
			// estimate).
			for k := 0; k < 1+rng.Intn(3); k++ {
				g.Add(subj, rdf.NewIRI(fmt.Sprintf("p%d", p)), rdf.NewIRI(fmt.Sprintf("o%d", rng.Intn(300))))
			}
		}
	}
	g.Dedup()
	return g
}

func TestDistinctSubjectsExact(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := estGraph(seed)
		e := NewEstimator(g)
		for _, props := range [][]string{{"p0"}, {"p0", "p1"}, {"p0", "p1", "p2"}, {"p3"}} {
			ids := make([]rdf.ID, len(props))
			for i, p := range props {
				ids[i] = g.Dict.LookupIRI(p)
			}
			// Brute force: subjects having all props.
			bySubj := make(map[rdf.ID]map[rdf.ID]bool)
			for _, tr := range g.Triples {
				if bySubj[tr.S] == nil {
					bySubj[tr.S] = make(map[rdf.ID]bool)
				}
				bySubj[tr.S][tr.P] = true
			}
			var want int64
			for _, has := range bySubj {
				ok := true
				for _, id := range ids {
					if !has[id] {
						ok = false
						break
					}
				}
				if ok {
					want++
				}
			}
			if got := e.DistinctSubjects(ids); got != want {
				t.Fatalf("seed %d %v: DistinctSubjects = %d, want %d", seed, props, got, want)
			}
		}
	}
}

func TestEstimateStarAccuracy(t *testing.T) {
	// N&M's guarantee: per-CS uniform multiplicities make the estimate
	// exact; with random multiplicities it stays within a small factor.
	for seed := int64(0); seed < 5; seed++ {
		g := estGraph(seed)
		e := NewEstimator(g)
		for _, props := range [][]string{{"p0"}, {"p0", "p1"}, {"p1", "p2"}} {
			ids := make([]rdf.ID, len(props))
			for i, p := range props {
				ids[i] = g.Dict.LookupIRI(p)
			}
			truth := float64(starCount(g, ids))
			est := e.EstimateStar(ids)
			if truth == 0 {
				if est != 0 {
					t.Fatalf("seed %d %v: estimate %f for empty result", seed, props, est)
				}
				continue
			}
			ratio := est / truth
			if ratio < 0.5 || ratio > 2.0 {
				t.Fatalf("seed %d %v: estimate %.1f vs truth %.0f (ratio %.2f)",
					seed, props, est, truth, ratio)
			}
		}
	}
}

func TestEstimateStarExactWhenUniform(t *testing.T) {
	// Every subject in a CS has exactly the same multiplicities: the
	// estimate must be exact.
	g := rdf.NewGraph()
	for s := 0; s < 30; s++ {
		subj := rdf.NewIRI(fmt.Sprintf("s%d", s))
		for k := 0; k < 2; k++ { // exactly 2 triples of p0 each
			g.Add(subj, rdf.NewIRI("p0"), rdf.NewIRI(fmt.Sprintf("a%d_%d", s, k)))
		}
		g.Add(subj, rdf.NewIRI("p1"), rdf.NewIRI(fmt.Sprintf("b%d", s)))
	}
	g.Dedup()
	e := NewEstimator(g)
	ids := []rdf.ID{g.Dict.LookupIRI("p0"), g.Dict.LookupIRI("p1")}
	truth := float64(starCount(g, ids))
	if est := e.EstimateStar(ids); math.Abs(est-truth) > 1e-9 {
		t.Fatalf("uniform case: estimate %.2f, truth %.0f", est, truth)
	}
}

func TestPropertyTriples(t *testing.T) {
	g := estGraph(7)
	e := NewEstimator(g)
	want := make(map[rdf.ID]int64)
	for _, tr := range g.Triples {
		want[tr.P]++
	}
	for p, n := range want {
		if got := e.PropertyTriples(p); got != n {
			t.Errorf("PropertyTriples(%d) = %d, want %d", p, got, n)
		}
	}
}

func TestEstimatorEdgeCases(t *testing.T) {
	g := estGraph(3)
	e := NewEstimator(g)
	if e.EstimateStar(nil) != 0 {
		t.Error("empty star must estimate 0")
	}
	ghost := g.Dict.EncodeIRI("neverUsed")
	if e.DistinctSubjects([]rdf.ID{ghost}) != 0 {
		t.Error("unused property must have 0 subjects")
	}
	if e.EstimateStar([]rdf.ID{ghost}) != 0 {
		t.Error("unused property must estimate 0")
	}
	if e.Hierarchy() == nil {
		t.Error("Hierarchy() returned nil")
	}
}
