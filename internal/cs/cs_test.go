package cs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ping/internal/rdf"
)

func mkSet(ps ...rdf.ID) Set { return NewSet(ps) }

func TestNewSetSortsAndDedups(t *testing.T) {
	s := NewSet([]rdf.ID{5, 1, 3, 1, 5})
	want := []rdf.ID{1, 3, 5}
	got := s.Props()
	if len(got) != len(want) {
		t.Fatalf("Props = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Props = %v, want %v", got, want)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSetContains(t *testing.T) {
	s := mkSet(2, 4, 6)
	for _, p := range []rdf.ID{2, 4, 6} {
		if !s.Contains(p) {
			t.Errorf("Contains(%d) = false", p)
		}
	}
	for _, p := range []rdf.ID{1, 3, 5, 7} {
		if s.Contains(p) {
			t.Errorf("Contains(%d) = true", p)
		}
	}
}

func TestSubsetRelations(t *testing.T) {
	a := mkSet(1, 2)
	b := mkSet(1, 2, 3)
	c := mkSet(1, 4)
	if !a.SubsetOf(b) || !a.ProperSubsetOf(b) {
		t.Error("a ⊂ b not detected")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊆ a claimed")
	}
	if a.SubsetOf(c) || c.SubsetOf(a) {
		t.Error("incomparable sets claimed comparable")
	}
	if !a.SubsetOf(a) || a.ProperSubsetOf(a) {
		t.Error("reflexivity: SubsetOf(self) must hold, ProperSubsetOf(self) must not")
	}
	if !a.Equal(mkSet(2, 1)) || a.Equal(b) {
		t.Error("Equal misbehaves")
	}
}

func TestSubsetQuickAgainstMapSemantics(t *testing.T) {
	err := quick.Check(func(xs, ys []uint8) bool {
		toIDs := func(v []uint8) []rdf.ID {
			out := make([]rdf.ID, len(v))
			for i, x := range v {
				out[i] = rdf.ID(x % 16)
			}
			return out
		}
		a, b := NewSet(toIDs(xs)), NewSet(toIDs(ys))
		inB := make(map[rdf.ID]bool)
		for _, p := range b.Props() {
			inB[p] = true
		}
		want := true
		for _, p := range a.Props() {
			if !inB[p] {
				want = false
			}
		}
		return a.SubsetOf(b) == want
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtractRunningExample(t *testing.T) {
	// Example 2 from the paper: three proteins with nested CSs.
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("P26474"), iri("occursIn"), iri("Organism7"))
	g.Add(iri("P26474"), iri("hasKeyword"), iri("Keyword546"))
	g.Add(iri("P43426"), iri("occursIn"), iri("Organism584"))
	g.Add(iri("P43426"), iri("hasKeyword"), iri("Keyword125"))
	g.Add(iri("P43426"), iri("reference"), iri("Article972"))
	g.Add(iri("P38952"), iri("occursIn"), iri("Organism676"))
	g.Add(iri("P38952"), iri("hasKeyword"), iri("Keyword789"))
	g.Add(iri("P38952"), iri("reference"), iri("Article892"))
	g.Add(iri("P38952"), iri("interacts"), iri("P43426"))

	csMap := Extract(g)
	if len(csMap) != 3 {
		t.Fatalf("Extract found %d subjects, want 3", len(csMap))
	}
	p1 := csMap[g.Dict.LookupIRI("P26474")]
	p2 := csMap[g.Dict.LookupIRI("P43426")]
	p3 := csMap[g.Dict.LookupIRI("P38952")]
	if p1.Len() != 2 || p2.Len() != 3 || p3.Len() != 4 {
		t.Fatalf("CS sizes = %d/%d/%d, want 2/3/4", p1.Len(), p2.Len(), p3.Len())
	}
	if !p1.ProperSubsetOf(p2) || !p2.ProperSubsetOf(p3) {
		t.Error("expected CS(P26474) ⊂ CS(P43426) ⊂ CS(P38952)")
	}

	h := Build(csMap)
	if h.MaxLevel() != 3 {
		t.Errorf("MaxLevel = %d, want 3 (Example 3)", h.MaxLevel())
	}
	if got := h.LevelOf(p1); got != 1 {
		t.Errorf("level(p1) = %d, want 1", got)
	}
	if got := h.LevelOf(p2); got != 2 {
		t.Errorf("level(p2) = %d, want 2", got)
	}
	if got := h.LevelOf(p3); got != 3 {
		t.Errorf("level(p3) = %d, want 3", got)
	}
}

func TestIncomparableSetsShareLevelOne(t *testing.T) {
	// Example 3: a CS with no contained CS also lands at level 1, even if
	// large.
	h := BuildFromSets([]Set{
		mkSet(1, 2),
		mkSet(1, 2, 3),
		mkSet(10, 11, 12), // unrelated — level 1
	})
	if got := h.LevelOf(mkSet(10, 11, 12)); got != 1 {
		t.Errorf("unrelated CS level = %d, want 1", got)
	}
	if got := h.LevelOf(mkSet(1, 2, 3)); got != 2 {
		t.Errorf("superset CS level = %d, want 2", got)
	}
}

func TestDiamondLattice(t *testing.T) {
	// {1} and {2} both ⊂ {1,2}; level({1,2}) = 2 with two parents.
	h := BuildFromSets([]Set{mkSet(1), mkSet(2), mkSet(1, 2)})
	top := h.NodeOf(mkSet(1, 2))
	if h.Levels[top] != 2 {
		t.Errorf("level = %d, want 2", h.Levels[top])
	}
	if len(h.Parents[top]) != 2 {
		t.Errorf("parents = %v, want both {1} and {2}", h.Parents[top])
	}
}

func TestImmediateParentsSkipTransitive(t *testing.T) {
	// {1} ⊂ {1,2} ⊂ {1,2,3}: the top node's only immediate parent is
	// {1,2}, not {1}.
	h := BuildFromSets([]Set{mkSet(1), mkSet(1, 2), mkSet(1, 2, 3)})
	top := h.NodeOf(mkSet(1, 2, 3))
	if len(h.Parents[top]) != 1 || !h.Sets[h.Parents[top][0]].Equal(mkSet(1, 2)) {
		t.Errorf("immediate parents of top = %v", h.Parents[top])
	}
}

func TestLevelOfAbsent(t *testing.T) {
	h := BuildFromSets([]Set{mkSet(1)})
	if h.LevelOf(mkSet(9)) != 0 {
		t.Error("absent CS must report level 0")
	}
	if h.NodeOf(mkSet(9)) != -1 {
		t.Error("absent CS must report node -1")
	}
}

func TestSetsAtLevel(t *testing.T) {
	h := BuildFromSets([]Set{mkSet(1), mkSet(2), mkSet(1, 2), mkSet(2, 3)})
	if got := h.SetsAtLevel(1); len(got) != 2 {
		t.Errorf("level 1 has %d sets, want 2", len(got))
	}
	if got := h.SetsAtLevel(2); len(got) != 2 {
		t.Errorf("level 2 has %d sets, want 2", len(got))
	}
	if h.NumSets() != 4 {
		t.Errorf("NumSets = %d", h.NumSets())
	}
}

// TestHierarchyLevelInvariant property-checks the level definition: the
// level of every node is exactly one more than the max level among its
// strict subsets (or 1 when none exist).
func TestHierarchyLevelInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		var sets []Set
		seen := map[string]bool{}
		for i := 0; i < 40; i++ {
			n := 1 + rng.Intn(6)
			props := make([]rdf.ID, n)
			for j := range props {
				props[j] = rdf.ID(rng.Intn(12))
			}
			s := NewSet(props)
			if !seen[s.Key()] {
				seen[s.Key()] = true
				sets = append(sets, s)
			}
		}
		h := BuildFromSets(sets)
		for i, s := range h.Sets {
			want := 1
			for j, other := range h.Sets {
				if other.ProperSubsetOf(s) && h.Levels[j]+1 > want {
					want = h.Levels[j] + 1
				}
			}
			if h.Levels[i] != want {
				t.Fatalf("trial %d: level(%v) = %d, want %d", trial, s.Props(), h.Levels[i], want)
			}
		}
		// Parent edges must connect to strict subsets.
		for i := range h.Sets {
			for _, p := range h.Parents[i] {
				if !h.Sets[p].ProperSubsetOf(h.Sets[i]) {
					t.Fatalf("trial %d: parent edge to non-subset", trial)
				}
			}
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	h := Build(map[rdf.ID]Set{})
	if h.MaxLevel() != 0 || h.NumSets() != 0 {
		t.Errorf("empty hierarchy: max=%d sets=%d", h.MaxLevel(), h.NumSets())
	}
}

func TestKeyCanonical(t *testing.T) {
	if mkSet(3, 1).Key() != mkSet(1, 3).Key() {
		t.Error("Key not order-independent")
	}
	if mkSet(1).Key() == mkSet(2).Key() {
		t.Error("distinct sets share a key")
	}
	if mkSet().Key() != "" {
		t.Errorf("empty set key = %q", mkSet().Key())
	}
}
