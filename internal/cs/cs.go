// Package cs implements characteristic sets (Neumann & Moerkotte, ICDE'11)
// and the CS hierarchy that PING mines from them (§3.3–3.4 of the paper).
//
// The characteristic set of a subject is the set of its outgoing
// properties. Strict set inclusion between characteristic sets induces a
// partial order; the *level* of a CS is the length of the longest
// inclusion chain below it that is present in the dataset (Example 3:
// CS₁ ⊂ CS₂ ⊂ CS₃ puts them at levels 1, 2, 3, and a CS with no subset
// present sits at level 1). Levels define the hierarchical partitioning
// of package hpart.
package cs

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"ping/internal/rdf"
)

// Set is an immutable characteristic set: a strictly-increasing slice of
// property IDs. Construct with NewSet, which sorts and deduplicates.
type Set struct {
	props []rdf.ID
}

// NewSet builds a Set from property IDs in any order, with duplicates.
func NewSet(props []rdf.ID) Set {
	ps := append([]rdf.ID(nil), props...)
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return Set{props: out}
}

// Len returns the number of properties.
func (s Set) Len() int { return len(s.props) }

// Props returns the sorted property IDs. The caller must not mutate the
// returned slice.
func (s Set) Props() []rdf.ID { return s.props }

// Contains reports whether the property belongs to the set.
func (s Set) Contains(p rdf.ID) bool {
	i := sort.Search(len(s.props), func(i int) bool { return s.props[i] >= p })
	return i < len(s.props) && s.props[i] == p
}

// Key returns a canonical key for map hashing: the sorted property IDs in
// fixed-width little-endian binary. Binary keys hash several times faster
// than formatted strings, which matters because the partitioner keys every
// subject's CS during level assignment.
func (s Set) Key() string {
	buf := make([]byte, 4*len(s.props))
	for i, p := range s.props {
		binary.LittleEndian.PutUint32(buf[i*4:], p)
	}
	return string(buf)
}

// String renders the set readably for diagnostics.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.props {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", p)
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports element-wise equality.
func (s Set) Equal(t Set) bool {
	if len(s.props) != len(t.props) {
		return false
	}
	for i := range s.props {
		if s.props[i] != t.props[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports s ⊆ t via a linear merge over the sorted slices.
func (s Set) SubsetOf(t Set) bool {
	if len(s.props) > len(t.props) {
		return false
	}
	j := 0
	for _, p := range s.props {
		for j < len(t.props) && t.props[j] < p {
			j++
		}
		if j >= len(t.props) || t.props[j] != p {
			return false
		}
		j++
	}
	return true
}

// ProperSubsetOf reports s ⊂ t (Def. 3.2, CS subsumption).
func (s Set) ProperSubsetOf(t Set) bool {
	return len(s.props) < len(t.props) && s.SubsetOf(t)
}

// Extract computes the characteristic set of every subject in the graph
// (Def. 3.1) in a single pass over the triples. Graphs that are SPO-sorted
// (the normal form produced by Graph.Dedup) take a linear grouping path
// with no intermediate per-subject buffers.
func Extract(g *rdf.Graph) map[rdf.ID]Set {
	if sorted(g.Triples) {
		return extractSorted(g.Triples)
	}
	bysub := make(map[rdf.ID][]rdf.ID)
	for _, t := range g.Triples {
		bysub[t.S] = append(bysub[t.S], t.P)
	}
	out := make(map[rdf.ID]Set, len(bysub))
	for s, props := range bysub {
		out[s] = NewSet(props)
	}
	return out
}

func sorted(ts []rdf.Triple) bool {
	for i := 1; i < len(ts); i++ {
		if ts[i].Less(ts[i-1]) {
			return false
		}
	}
	return true
}

// extractSorted groups SPO-sorted triples by subject: each run's
// properties are already sorted, so the Set is built by in-place
// deduplication with no extra sort.
func extractSorted(ts []rdf.Triple) map[rdf.ID]Set {
	out := make(map[rdf.ID]Set)
	for i := 0; i < len(ts); {
		s := ts[i].S
		j := i
		props := make([]rdf.ID, 0, 8)
		for ; j < len(ts) && ts[j].S == s; j++ {
			if n := len(props); n == 0 || props[n-1] != ts[j].P {
				props = append(props, ts[j].P)
			}
		}
		out[s] = Set{props: props}
		i = j
	}
	return out
}

// Hierarchy is the CS lattice of Def. 3.3 restricted to the characteristic
// sets actually present in a dataset, with the level of each node.
type Hierarchy struct {
	// Sets holds the distinct characteristic sets; the slice index is the
	// node's CS id within the hierarchy.
	Sets []Set
	// Levels[i] is the 1-based level of Sets[i].
	Levels []int
	// Parents[i] lists the immediate subsumers of Sets[i] (edges of the
	// lattice pointing toward coarser sets).
	Parents [][]int

	byKey    map[string]int
	maxLevel int
}

// Build constructs the hierarchy from the distinct characteristic sets of
// the given subject→CS assignment (the output of Extract).
func Build(csBySubject map[rdf.ID]Set) *Hierarchy {
	byKey := make(map[string]int)
	var sets []Set
	for _, s := range csBySubject {
		key := s.Key()
		if _, ok := byKey[key]; !ok {
			byKey[key] = len(sets)
			sets = append(sets, s)
		}
	}
	return BuildFromSets(sets)
}

// BuildFromSets constructs the hierarchy from an explicit list of distinct
// characteristic sets.
func BuildFromSets(sets []Set) *Hierarchy {
	h := &Hierarchy{
		Sets:    append([]Set(nil), sets...),
		byKey:   make(map[string]int, len(sets)),
		Levels:  make([]int, len(sets)),
		Parents: make([][]int, len(sets)),
	}
	// Order nodes by set size so every strict subset precedes its
	// supersets; levels then resolve in one pass.
	order := make([]int, len(h.Sets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := h.Sets[order[a]], h.Sets[order[b]]
		if sa.Len() != sb.Len() {
			return sa.Len() < sb.Len()
		}
		return sa.Key() < sb.Key()
	})
	for _, i := range order {
		h.byKey[h.Sets[i].Key()] = i
	}
	for oi, i := range order {
		level := 1
		var subsumed []int // strictly-contained nodes
		for _, j := range order[:oi] {
			if h.Sets[j].ProperSubsetOf(h.Sets[i]) {
				subsumed = append(subsumed, j)
				if h.Levels[j]+1 > level {
					level = h.Levels[j] + 1
				}
			}
		}
		h.Levels[i] = level
		if level > h.maxLevel {
			h.maxLevel = level
		}
		// Immediate parents: subsumed nodes not contained in another
		// subsumed node.
		for _, p := range subsumed {
			immediate := true
			for _, q := range subsumed {
				if p != q && h.Sets[p].ProperSubsetOf(h.Sets[q]) {
					immediate = false
					break
				}
			}
			if immediate {
				h.Parents[i] = append(h.Parents[i], p)
			}
		}
	}
	return h
}

// NodeOf returns the hierarchy node index for a characteristic set, or -1
// if the set does not occur in the dataset.
func (h *Hierarchy) NodeOf(s Set) int {
	if i, ok := h.byKey[s.Key()]; ok {
		return i
	}
	return -1
}

// LevelOf returns the 1-based level for a characteristic set, or 0 if the
// set does not occur.
func (h *Hierarchy) LevelOf(s Set) int {
	if i := h.NodeOf(s); i >= 0 {
		return h.Levels[i]
	}
	return 0
}

// MaxLevel returns the number of levels (the hierarchy depth).
func (h *Hierarchy) MaxLevel() int { return h.maxLevel }

// NumSets returns the number of distinct characteristic sets.
func (h *Hierarchy) NumSets() int { return len(h.Sets) }

// SetsAtLevel returns the node indices at a given level, ascending.
func (h *Hierarchy) SetsAtLevel(level int) []int {
	var out []int
	for i, l := range h.Levels {
		if l == level {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
