package engine

import (
	"sort"

	"ping/internal/rdf"
	"ping/internal/sparql"
)

// Naive evaluates a BGP against a graph by backtracking over triple
// patterns, one pattern at a time, most-selective-first. It is written for
// clarity, not speed: it serves as the reference oracle the paper's
// formal claims are tested against (PQA boundedness, EQA completeness).
func Naive(g *rdf.Graph, q *sparql.Query) *Relation {
	byProp := make(map[rdf.ID][]rdf.SOPair)
	for _, t := range g.Triples {
		byProp[t.P] = append(byProp[t.P], rdf.SOPair{S: t.S, O: t.O})
	}

	// Order patterns by a crude selectivity estimate: constant-rich
	// patterns first, then small property extents.
	patterns := append([]sparql.TriplePattern(nil), q.Patterns...)
	extent := func(p sparql.TriplePattern) int {
		n := 0
		if p.P.IsConcrete() {
			id := g.Dict.Lookup(p.P)
			if id == rdf.NoID {
				return 0
			}
			n = len(byProp[id])
		} else {
			n = g.Len()
		}
		if p.S.IsConcrete() || p.O.IsConcrete() {
			n /= 4
		}
		return n
	}
	sort.SliceStable(patterns, func(i, j int) bool { return extent(patterns[i]) < extent(patterns[j]) })

	binding := make(map[string]rdf.ID)
	var results []map[string]rdf.ID

	var walk func(i int)
	walk = func(i int) {
		if i == len(patterns) {
			snapshot := make(map[string]rdf.ID, len(binding))
			for k, v := range binding {
				snapshot[k] = v
			}
			results = append(results, snapshot)
			return
		}
		pat := patterns[i]
		tryRows := func(prop rdf.ID, rows []rdf.SOPair) {
			for _, pr := range rows {
				var bound []string
				match := true
				unify := func(term rdf.Term, val rdf.ID) {
					if !match {
						return
					}
					switch {
					case !term.IsVar():
						if g.Dict.Lookup(term) != val {
							match = false
						}
					default:
						if cur, ok := binding[term.Value]; ok {
							if cur != val {
								match = false
							}
						} else {
							binding[term.Value] = val
							bound = append(bound, term.Value)
						}
					}
				}
				unify(pat.S, pr.S)
				unify(pat.P, prop)
				unify(pat.O, pr.O)
				if match {
					walk(i + 1)
				}
				for _, v := range bound {
					delete(binding, v)
				}
			}
		}
		if pat.P.IsConcrete() {
			if id := g.Dict.Lookup(pat.P); id != rdf.NoID {
				tryRows(id, byProp[id])
			}
			return
		}
		// Variable predicate: consider every property, respecting an
		// existing binding.
		if cur, ok := binding[pat.P.Value]; ok {
			tryRows(cur, byProp[cur])
			return
		}
		for prop, rows := range byProp {
			tryRows(prop, rows)
		}
	}
	walk(0)

	proj := q.Projection()
	rel := &Relation{Vars: proj, Rows: make([][]rdf.ID, 0, len(results))}
	for _, b := range results {
		if len(q.Filters) > 0 {
			lookup := func(name string) (rdf.Term, bool) {
				if id, ok := b[name]; ok {
					return g.Dict.Term(id), true
				}
				return rdf.Term{}, false
			}
			keep := true
			for _, f := range q.Filters {
				if !f.Eval(lookup) {
					keep = false
					break
				}
			}
			if !keep {
				continue
			}
		}
		row := make([]rdf.ID, len(proj))
		for j, v := range proj {
			row[j] = b[v]
		}
		rel.Rows = append(rel.Rows, row)
	}
	if q.Distinct {
		rel = rel.Distinct()
	}
	return rel.Limit(q.Limit)
}
