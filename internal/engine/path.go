package engine

import (
	"fmt"

	"ping/internal/dataflow"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// Property-path evaluation (§6.2 navigational extension). Paths are
// evaluated to (subject, object) pair sets with set semantics:
//
//	IRI   — the property's pairs;
//	p/q   — relational composition;
//	p|q   — union;
//	p+    — transitive closure (semi-naive fixpoint);
//	p*    — p+ plus the zero-length pairs (x, x).
//
// Zero-length paths range over the nodes incident to the path's
// properties *within the evaluated data* (for a slice: the loaded
// sub-partitions; for exact evaluation: the full property extents). This
// is a monotone restriction of the SPARQL spec's "all graph terms", so
// progressive evaluation stays sound, and the final slice agrees with
// whole-graph evaluation because it loads every level of the involved
// properties.

// PathInput feeds one path pattern: the rows of every property the path
// mentions, grouped by property.
type PathInput struct {
	Pattern sparql.PathPattern
	Groups  []PropGroup
}

// TotalRows returns the data-access contribution of the path pattern.
func (in PathInput) TotalRows() int {
	n := 0
	for _, g := range in.Groups {
		n += g.Rows.Len()
	}
	return n
}

// pairSet is a deduplicated set of SO pairs.
type pairSet map[rdf.SOPair]struct{}

func (s pairSet) add(p rdf.SOPair) { s[p] = struct{}{} }

func (s pairSet) slice() []rdf.SOPair {
	out := make([]rdf.SOPair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	return out
}

// evalPath computes the pair set of a path over per-property extents.
func evalPath(path sparql.Path, byProp map[rdf.ID][]rdf.SOPair, universe []rdf.ID, dict Dict) pairSet {
	switch p := path.(type) {
	case sparql.PathIRI:
		out := make(pairSet)
		if id := dict.Lookup(p.IRI); id != rdf.NoID {
			for _, pr := range byProp[id] {
				out.add(pr)
			}
		}
		return out
	case sparql.PathSeq:
		if len(p.Parts) == 0 {
			return make(pairSet)
		}
		cur := evalPath(p.Parts[0], byProp, universe, dict)
		for _, part := range p.Parts[1:] {
			next := evalPath(part, byProp, universe, dict)
			cur = compose(cur, next)
		}
		return cur
	case sparql.PathAlt:
		out := make(pairSet)
		for _, part := range p.Parts {
			for pr := range evalPath(part, byProp, universe, dict) {
				out.add(pr)
			}
		}
		return out
	case sparql.PathPlus:
		return closure(evalPath(p.Sub, byProp, universe, dict))
	case sparql.PathStar:
		out := closure(evalPath(p.Sub, byProp, universe, dict))
		for _, n := range universe {
			out.add(rdf.SOPair{S: n, O: n})
		}
		return out
	default:
		return make(pairSet)
	}
}

// compose joins a.O with b.S.
func compose(a, b pairSet) pairSet {
	bySubject := make(map[rdf.ID][]rdf.ID)
	for pr := range b {
		bySubject[pr.S] = append(bySubject[pr.S], pr.O)
	}
	out := make(pairSet)
	for pr := range a {
		for _, o := range bySubject[pr.O] {
			out.add(rdf.SOPair{S: pr.S, O: o})
		}
	}
	return out
}

// closure computes the transitive closure with semi-naive iteration: each
// round extends only the newly discovered pairs.
func closure(base pairSet) pairSet {
	total := make(pairSet, len(base))
	for pr := range base {
		total.add(pr)
	}
	bySubject := make(map[rdf.ID][]rdf.ID)
	for pr := range base {
		bySubject[pr.S] = append(bySubject[pr.S], pr.O)
	}
	delta := total
	for len(delta) > 0 {
		next := make(pairSet)
		for pr := range delta {
			for _, o := range bySubject[pr.O] {
				cand := rdf.SOPair{S: pr.S, O: o}
				if _, seen := total[cand]; !seen {
					total.add(cand)
					next.add(cand)
				}
			}
		}
		delta = next
	}
	return total
}

// BuildPathRelation evaluates a path pattern's input rows into a relation
// over the pattern's variables, applying endpoint constants and the
// repeated-variable case (?x path ?x).
func BuildPathRelation(in PathInput, dict Dict) (*Relation, error) {
	pat := in.Pattern
	rel := &Relation{Vars: pat.Vars()}

	byProp := make(map[rdf.ID][]rdf.SOPair, len(in.Groups))
	universeSet := make(map[rdf.ID]struct{})
	for _, g := range in.Groups {
		byProp[g.Prop] = g.Rows.AppendTo(byProp[g.Prop])
		g.Rows.ForEach(func(pr rdf.SOPair) {
			universeSet[pr.S] = struct{}{}
			universeSet[pr.O] = struct{}{}
		})
	}
	universe := make([]rdf.ID, 0, len(universeSet))
	for n := range universeSet {
		universe = append(universe, n)
	}

	pairs := evalPath(pat.Path, byProp, universe, dict)

	var sConst, oConst rdf.ID
	sIsConst, oIsConst := pat.S.IsConcrete(), pat.O.IsConcrete()
	if sIsConst {
		if sConst = dict.Lookup(pat.S); sConst == rdf.NoID {
			return rel, nil
		}
	}
	if oIsConst {
		if oConst = dict.Lookup(pat.O); oConst == rdf.NoID {
			return rel, nil
		}
	}
	sameVar := pat.S.IsVar() && pat.O.IsVar() && pat.S.Value == pat.O.Value

	for pr := range pairs {
		if sIsConst && pr.S != sConst {
			continue
		}
		if oIsConst && pr.O != oConst {
			continue
		}
		if sameVar && pr.S != pr.O {
			continue
		}
		row := make([]rdf.ID, 0, 2)
		if pat.S.IsVar() {
			row = append(row, pr.S)
		}
		if pat.O.IsVar() && !sameVar {
			row = append(row, pr.O)
		}
		rel.Rows = append(rel.Rows, row)
	}
	// Path evaluation has set semantics; constant-only patterns may still
	// produce duplicate empty rows.
	if len(rel.Vars) == 0 && len(rel.Rows) > 1 {
		rel.Rows = rel.Rows[:1]
	}
	return rel.Distinct(), nil
}

// EvaluatePaths computes a query that mixes plain triple patterns and
// property-path patterns. inputs aligns with q.Patterns and pathInputs
// with q.Paths.
func EvaluatePaths(q *sparql.Query, inputs []PatternInput, pathInputs []PathInput, dict Dict, opts Options) (*Relation, *Stats, error) {
	if len(inputs) != len(q.Patterns) || len(pathInputs) != len(q.Paths) {
		return nil, nil, fmt.Errorf("engine: %d/%d inputs for %d patterns + %d paths",
			len(inputs), len(pathInputs), len(q.Patterns), len(q.Paths))
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = dataflow.NewContext(1)
	}
	stats := &Stats{}
	rels := make([]*Relation, 0, len(inputs)+len(pathInputs))
	for _, in := range inputs {
		stats.InputRows += int64(in.TotalRows())
		rel, err := BuildRelation(in, dict)
		if err != nil {
			return nil, nil, err
		}
		rels = append(rels, rel)
	}
	for _, in := range pathInputs {
		stats.InputRows += int64(in.TotalRows())
		rel, err := BuildPathRelation(in, dict)
		if err != nil {
			return nil, nil, err
		}
		rels = append(rels, rel)
	}

	result, err := joinAll(ctx, rels, opts, stats)
	if err != nil {
		return nil, nil, err
	}
	// FILTER expressions apply to the joined solution before projection,
	// so they may reference variables the projection drops.
	result = applyFilters(result, q.Filters, dict)
	proj := q.Projection()
	if len(proj) > 0 {
		result, err = result.Project(proj)
		if err != nil {
			return nil, nil, err
		}
	}
	if q.Distinct {
		result = result.Distinct()
	}
	result = result.Limit(q.Limit)
	stats.OutputRows = int64(result.Card())
	return result, stats, nil
}

// PathInputsFromGraph builds whole-graph path inputs (no pruning) — the
// reference evaluation used by tests and workload generation.
func PathInputsFromGraph(g *rdf.Graph, q *sparql.Query) []PathInput {
	byProp := make(map[rdf.ID][]rdf.SOPair)
	for _, t := range g.Triples {
		byProp[t.P] = append(byProp[t.P], rdf.SOPair{S: t.S, O: t.O})
	}
	out := make([]PathInput, len(q.Paths))
	for i, pat := range q.Paths {
		in := PathInput{Pattern: pat}
		seen := make(map[rdf.ID]bool)
		for _, iri := range pat.Path.IRIs(nil) {
			id := g.Dict.Lookup(iri)
			if id == rdf.NoID || seen[id] {
				continue
			}
			seen[id] = true
			in.Groups = append(in.Groups, PropGroup{Prop: id, Rows: rdf.RawPairs(byProp[id])})
		}
		out[i] = in
	}
	return out
}
