package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"ping/internal/rdf"
	"ping/internal/sparql"
)

// pathGraph builds a small graph for path tests:
//
//	a -p-> b -p-> c -p-> d      (a chain)
//	b -q-> x, d -q-> y          (side edges)
//	e -p-> e                    (self loop)
func pathGraph() *rdf.Graph {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("a"), iri("p"), iri("b"))
	g.Add(iri("b"), iri("p"), iri("c"))
	g.Add(iri("c"), iri("p"), iri("d"))
	g.Add(iri("b"), iri("q"), iri("x"))
	g.Add(iri("d"), iri("q"), iri("y"))
	g.Add(iri("e"), iri("p"), iri("e"))
	g.Dedup()
	return g
}

func evalPathQuery(t *testing.T, g *rdf.Graph, qs string) *Relation {
	t.Helper()
	q := sparql.MustParse(qs)
	rel, _, err := EvaluatePaths(q, InputsFromGraph(g, q), PathInputsFromGraph(g, q), g.Dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestPathPlusClosure(t *testing.T) {
	g := pathGraph()
	rel := evalPathQuery(t, g, `SELECT * WHERE { <a> <p>+ ?y }`)
	// a reaches b, c, d.
	if rel.Card() != 3 {
		t.Fatalf("a p+ ?y: %d rows, want 3", rel.Card())
	}
	// Self loop: e reaches e via p+.
	rel2 := evalPathQuery(t, g, `SELECT * WHERE { <e> <p>+ ?y }`)
	if rel2.Card() != 1 || g.Dict.Term(rel2.Rows[0][0]).Value != "e" {
		t.Fatalf("e p+ = %v", rel2.Rows)
	}
}

// bfsReach is an independent oracle for transitive closure.
func bfsReach(g *rdf.Graph, prop string, from rdf.ID) map[rdf.ID]bool {
	propID := g.Dict.LookupIRI(prop)
	adj := make(map[rdf.ID][]rdf.ID)
	for _, t := range g.Triples {
		if t.P == propID {
			adj[t.S] = append(adj[t.S], t.O)
		}
	}
	seen := make(map[rdf.ID]bool)
	queue := append([]rdf.ID(nil), adj[from]...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		queue = append(queue, adj[n]...)
	}
	return seen
}

func TestPathPlusMatchesBFSRandomized(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		n := 25
		for i := 0; i < 60; i++ {
			g.Add(
				rdf.NewIRI(fmt.Sprintf("n%d", rng.Intn(n))),
				rdf.NewIRI("p"),
				rdf.NewIRI(fmt.Sprintf("n%d", rng.Intn(n))),
			)
		}
		g.Dedup()
		start := fmt.Sprintf("n%d", rng.Intn(n))
		rel := evalPathQuery(t, g, fmt.Sprintf(`SELECT * WHERE { <%s> <p>+ ?y }`, start))
		startID := g.Dict.LookupIRI(start)
		if startID == rdf.NoID {
			continue
		}
		want := bfsReach(g, "p", startID)
		if rel.Card() != len(want) {
			t.Fatalf("seed %d: closure from %s has %d nodes, BFS says %d",
				seed, start, rel.Card(), len(want))
		}
		for _, row := range rel.Rows {
			if !want[row[0]] {
				t.Fatalf("seed %d: closure contains unreachable node", seed)
			}
		}
	}
}

func TestPathStarIncludesZeroLength(t *testing.T) {
	g := pathGraph()
	relPlus := evalPathQuery(t, g, `SELECT * WHERE { <a> <p>+ ?y }`)
	relStar := evalPathQuery(t, g, `SELECT * WHERE { <a> <p>* ?y }`)
	if relStar.Card() != relPlus.Card()+1 {
		t.Fatalf("star %d rows, plus %d: star must add exactly the zero-length match",
			relStar.Card(), relPlus.Card())
	}
}

func TestPathSeq(t *testing.T) {
	g := pathGraph()
	// p/q: a->b->x? No: a-p->b, b-q->x → (a,x). c-p->d, d-q->y → (c,y).
	// b-p->c has no q out of c.
	rel := evalPathQuery(t, g, `SELECT * WHERE { ?s <p>/<q> ?o }`)
	if rel.Card() != 2 {
		t.Fatalf("p/q: %d rows, want 2", rel.Card())
	}
}

func TestPathAlt(t *testing.T) {
	g := pathGraph()
	rel := evalPathQuery(t, g, `SELECT * WHERE { <b> (<p>|<q>) ?o }`)
	// b-p->c and b-q->x.
	if rel.Card() != 2 {
		t.Fatalf("b (p|q) ?o: %d rows, want 2", rel.Card())
	}
}

func TestPathClosureOfSeq(t *testing.T) {
	// (p/p)+ from a: a->c (2 hops), a->? 4 hops would be beyond d. So {c}.
	g := pathGraph()
	rel := evalPathQuery(t, g, `SELECT * WHERE { <a> (<p>/<p>)+ ?y }`)
	if rel.Card() != 1 || g.Dict.Term(rel.Rows[0][0]).Value != "c" {
		t.Fatalf("(p/p)+ from a = %v, want {c}", rel.Rows)
	}
}

func TestPathConstantBothEnds(t *testing.T) {
	g := pathGraph()
	rel := evalPathQuery(t, g, `SELECT * WHERE { <a> <p>+ <d> }`)
	if rel.Card() != 1 {
		t.Fatalf("a p+ d: %d rows, want 1 (no vars → single empty row)", rel.Card())
	}
	rel2 := evalPathQuery(t, g, `SELECT * WHERE { <a> <p>+ <x> }`)
	if rel2.Card() != 0 {
		t.Fatalf("a p+ x: %d rows, want 0", rel2.Card())
	}
}

func TestPathSameVariableBothEnds(t *testing.T) {
	g := pathGraph()
	rel := evalPathQuery(t, g, `SELECT * WHERE { ?x <p>+ ?x }`)
	// Only the self loop e.
	if rel.Card() != 1 || g.Dict.Term(rel.Rows[0][0]).Value != "e" {
		t.Fatalf("?x p+ ?x = %v", rel.Rows)
	}
}

func TestPathJoinedWithBGP(t *testing.T) {
	g := pathGraph()
	// Reachable from a via p+, then q out of it.
	rel := evalPathQuery(t, g, `SELECT * WHERE { <a> <p>+ ?m . ?m <q> ?o }`)
	// m ∈ {b, d} have q edges → (b,x), (d,y).
	if rel.Card() != 2 {
		t.Fatalf("path+BGP join: %d rows, want 2", rel.Card())
	}
}

func TestPathUnknownProperty(t *testing.T) {
	g := pathGraph()
	rel := evalPathQuery(t, g, `SELECT * WHERE { ?s <nosuch>+ ?o }`)
	if rel.Card() != 0 {
		t.Fatalf("unknown property closure: %d rows", rel.Card())
	}
	// Star of an unknown property: universe is empty too (no incident
	// nodes), so zero rows — documented divergence from the spec's
	// all-graph-terms semantics.
	rel2 := evalPathQuery(t, g, `SELECT * WHERE { ?s <nosuch>* ?o }`)
	if rel2.Card() != 0 {
		t.Fatalf("unknown property star: %d rows", rel2.Card())
	}
}

func TestEvaluatePathsInputMismatch(t *testing.T) {
	g := pathGraph()
	q := sparql.MustParse(`SELECT * WHERE { ?x <p>+ ?y }`)
	if _, _, err := EvaluatePaths(q, nil, nil, g.Dict, Options{}); err == nil {
		t.Error("mismatched path inputs accepted")
	}
	// Evaluate (BGP-only entry point) must reject path queries.
	if _, _, err := Evaluate(q, nil, g.Dict, Options{}); err == nil {
		t.Error("Evaluate accepted a path query")
	}
}
