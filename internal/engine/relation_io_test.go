package engine

import (
	"bytes"
	"reflect"
	"testing"

	"ping/internal/rdf"
)

func TestRelationRoundTrip(t *testing.T) {
	cases := []*Relation{
		nil,
		{},
		{Vars: []string{"x"}},
		{Vars: []string{"x", "y"}, Rows: [][]rdf.ID{{1, 2}, {3, 4}, {0, ^rdf.ID(0) - 1}}},
		{Vars: []string{""}, Rows: [][]rdf.ID{{7}}},
		{Rows: [][]rdf.ID{{}, {}}}, // width-0 rows (fully concrete pattern)
	}
	var buf []byte
	for _, r := range cases {
		buf = AppendRelation(buf, r)
	}
	rest := buf
	for i, want := range cases {
		var got *Relation
		var err error
		got, rest, err = DecodeRelation(rest)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if want == nil {
			want = &Relation{}
		}
		if len(got.Vars) != len(want.Vars) || (len(want.Vars) > 0 && !reflect.DeepEqual(got.Vars, want.Vars)) {
			t.Fatalf("case %d: vars %v, want %v", i, got.Vars, want.Vars)
		}
		if got.Card() != want.Card() {
			t.Fatalf("case %d: %d rows, want %d", i, got.Card(), want.Card())
		}
		for j := range want.Rows {
			if len(want.Rows[j]) == 0 && len(got.Rows[j]) == 0 {
				continue
			}
			if !reflect.DeepEqual(got.Rows[j], want.Rows[j]) {
				t.Fatalf("case %d row %d: %v, want %v", i, j, got.Rows[j], want.Rows[j])
			}
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestDecodeRelationRejectsGarbage(t *testing.T) {
	good := AppendRelation(nil, &Relation{Vars: []string{"x", "y"}, Rows: [][]rdf.ID{{1, 2}, {3, 4}}})
	// Any strict prefix must fail (the encoding is not self-delimiting in
	// a way that allows truncation).
	for i := 0; i < len(good); i++ {
		if _, _, err := DecodeRelation(good[:i]); err == nil && i < len(good) {
			// A prefix may decode to a shorter valid relation only if the
			// remaining bytes were row payload; re-encode to check.
			r, rest, _ := DecodeRelation(good[:i])
			if len(rest) == 0 && r != nil {
				rb := AppendRelation(nil, r)
				if bytes.Equal(rb, good[:i]) {
					continue // legitimately a complete shorter encoding
				}
			}
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Absurd counts must be rejected, not allocated.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	if _, _, err := DecodeRelation(huge); err == nil {
		t.Fatal("absurd var count accepted")
	}
}
