package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"ping/internal/dataflow"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// testGraph builds a small social-style graph with known answers.
func testGraph() *rdf.Graph {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	knows, likes, name := iri("http://x/knows"), iri("http://x/likes"), iri("http://x/name")
	alice, bob, carol, dave := iri("http://x/alice"), iri("http://x/bob"), iri("http://x/carol"), iri("http://x/dave")
	g.Add(alice, knows, bob)
	g.Add(alice, knows, carol)
	g.Add(bob, knows, carol)
	g.Add(carol, knows, dave)
	g.Add(alice, likes, carol)
	g.Add(bob, likes, dave)
	g.Add(alice, name, rdf.NewLiteral("Alice"))
	g.Add(bob, name, rdf.NewLiteral("Bob"))
	g.Add(carol, name, rdf.NewLiteral("Carol"))
	return g
}

func evalOnGraph(t *testing.T, g *rdf.Graph, q *sparql.Query) (*Relation, *Stats) {
	t.Helper()
	rel, stats, err := Evaluate(q, InputsFromGraph(g, q), g.Dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rel, stats
}

func sameRelation(a, b *Relation) bool {
	if a.Card() != b.Card() {
		return false
	}
	as, bs := a.Sorted(), b.Sorted()
	for i := range as {
		if len(as[i]) != len(bs[i]) {
			return false
		}
		for j := range as[i] {
			if as[i][j] != bs[i][j] {
				return false
			}
		}
	}
	return true
}

func TestEvaluateStarQuery(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://x/knows> ?q . ?p <http://x/likes> ?r }`)
	rel, stats := evalOnGraph(t, g, q)
	// alice knows {bob,carol} × likes {carol} = 2; bob knows {carol} × likes {dave} = 1.
	if rel.Card() != 3 {
		t.Errorf("Card = %d, want 3", rel.Card())
	}
	if stats.Joins != 1 || stats.InputRows != 6 {
		t.Errorf("stats = %+v", stats)
	}
	if !sameRelation(rel, Naive(g, q)) {
		t.Error("Evaluate disagrees with Naive")
	}
}

func TestEvaluateChainQuery(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse(`SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c }`)
	rel, _ := evalOnGraph(t, g, q)
	// alice→bob→carol, alice→carol→dave, bob→carol→dave.
	if rel.Card() != 3 {
		t.Errorf("Card = %d, want 3", rel.Card())
	}
	if !sameRelation(rel, Naive(g, q)) {
		t.Error("Evaluate disagrees with Naive")
	}
}

func TestEvaluateConstantObject(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse(`SELECT ?p WHERE { ?p <http://x/knows> <http://x/carol> }`)
	rel, _ := evalOnGraph(t, g, q)
	if rel.Card() != 2 { // alice, bob
		t.Errorf("Card = %d, want 2", rel.Card())
	}
}

func TestEvaluateConstantSubject(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse(`SELECT ?o WHERE { <http://x/alice> <http://x/knows> ?o }`)
	rel, _ := evalOnGraph(t, g, q)
	if rel.Card() != 2 {
		t.Errorf("Card = %d, want 2", rel.Card())
	}
}

func TestEvaluateVariablePredicate(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse(`SELECT * WHERE { <http://x/alice> ?p ?o }`)
	rel, _ := evalOnGraph(t, g, q)
	if rel.Card() != 4 { // knows×2, likes×1, name×1
		t.Errorf("Card = %d, want 4", rel.Card())
	}
	if !sameRelation(rel, Naive(g, q)) {
		t.Error("Evaluate disagrees with Naive on variable predicate")
	}
}

func TestEvaluateRepeatedVariable(t *testing.T) {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("a"), iri("p"), iri("a")) // self loop
	g.Add(iri("a"), iri("p"), iri("b"))
	q := sparql.MustParse(`SELECT ?x WHERE { ?x <p> ?x }`)
	rel, _ := evalOnGraph(t, g, q)
	if rel.Card() != 1 {
		t.Errorf("Card = %d, want 1 (self loop only)", rel.Card())
	}
	if !sameRelation(rel, Naive(g, q)) {
		t.Error("Evaluate disagrees with Naive on repeated variable")
	}
}

func TestEvaluateDisconnectedPatterns(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse(`SELECT * WHERE { ?a <http://x/likes> ?b . ?c <http://x/name> ?n }`)
	rel, _ := evalOnGraph(t, g, q)
	if rel.Card() != 6 { // 2 likes × 3 names cross product
		t.Errorf("Card = %d, want 6", rel.Card())
	}
	if !sameRelation(rel, Naive(g, q)) {
		t.Error("Evaluate disagrees with Naive on cross product")
	}
}

func TestEvaluateDistinctAndLimit(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse(`SELECT DISTINCT ?p WHERE { ?p <http://x/knows> ?q }`)
	rel, _ := evalOnGraph(t, g, q)
	if rel.Card() != 3 { // alice, bob, carol
		t.Errorf("DISTINCT Card = %d, want 3", rel.Card())
	}
	q2 := sparql.MustParse(`SELECT ?p WHERE { ?p <http://x/knows> ?q } LIMIT 2`)
	rel2, _ := evalOnGraph(t, g, q2)
	if rel2.Card() != 2 {
		t.Errorf("LIMIT Card = %d, want 2", rel2.Card())
	}
}

func TestEvaluateUnknownConstant(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://x/knows> <http://x/nobody> }`)
	rel, _ := evalOnGraph(t, g, q)
	if rel.Card() != 0 {
		t.Errorf("Card = %d, want 0", rel.Card())
	}
	q2 := sparql.MustParse(`SELECT * WHERE { ?p <http://x/unknownProp> ?q }`)
	rel2, _ := evalOnGraph(t, g, q2)
	if rel2.Card() != 0 {
		t.Errorf("unknown property Card = %d, want 0", rel2.Card())
	}
}

func TestEvaluateInputMismatch(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://x/knows> ?q }`)
	if _, _, err := Evaluate(q, nil, g.Dict, Options{}); err == nil {
		t.Error("mismatched inputs accepted")
	}
}

// randomQueryGraph generates a graph and query for the randomized
// equivalence test: Evaluate must agree with the backtracking oracle on
// arbitrary star/chain/complex BGPs.
func randomQueryGraph(seed int64) (*rdf.Graph, *sparql.Query) {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	nProps, nNodes := 4, 12
	for i := 0; i < 80; i++ {
		g.Add(
			rdf.NewIRI(fmt.Sprintf("n%d", rng.Intn(nNodes))),
			rdf.NewIRI(fmt.Sprintf("p%d", rng.Intn(nProps))),
			rdf.NewIRI(fmt.Sprintf("n%d", rng.Intn(nNodes))),
		)
	}
	g.Dedup()
	nPats := 2 + rng.Intn(3)
	varNames := []string{"a", "b", "c", "d"}
	var pats []string
	for i := 0; i < nPats; i++ {
		s := "?" + varNames[rng.Intn(len(varNames))]
		if rng.Intn(5) == 0 {
			s = fmt.Sprintf("<n%d>", rng.Intn(nNodes))
		}
		o := "?" + varNames[rng.Intn(len(varNames))]
		if rng.Intn(5) == 0 {
			o = fmt.Sprintf("<n%d>", rng.Intn(nNodes))
		}
		p := fmt.Sprintf("<p%d>", rng.Intn(nProps))
		pats = append(pats, fmt.Sprintf("%s %s %s .", s, p, o))
	}
	qs := "SELECT * WHERE { "
	for _, p := range pats {
		qs += p + " "
	}
	qs += "}"
	return g, sparql.MustParse(qs)
}

func TestEvaluateMatchesOracleRandomized(t *testing.T) {
	ctx := dataflow.NewContext(4)
	for seed := int64(0); seed < 40; seed++ {
		g, q := randomQueryGraph(seed)
		rel, _, err := Evaluate(q, InputsFromGraph(g, q), g.Dict, Options{Context: ctx, Partitions: 3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := Naive(g, q)
		if !sameRelation(rel, want) {
			t.Fatalf("seed %d: Evaluate %d rows, Naive %d rows\nquery:\n%s",
				seed, rel.Card(), want.Card(), q)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	g := testGraph()
	q := sparql.MustParse(`SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . ?c <http://x/name> ?n }`)
	_, stats := evalOnGraph(t, g, q)
	if stats.Joins != 2 {
		t.Errorf("Joins = %d, want 2", stats.Joins)
	}
	if stats.InputRows != 4+4+3 {
		t.Errorf("InputRows = %d, want 11", stats.InputRows)
	}
	if stats.OutputRows == 0 || stats.IntermediateRows == 0 {
		t.Errorf("stats = %+v", stats)
	}
}
