package engine

import (
	"fmt"
	"testing"

	"ping/internal/dataflow"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// skewedGraph has one big property extent and one tiny one, the broadcast
// join's natural habitat.
func skewedGraph() *rdf.Graph {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	for i := 0; i < 2000; i++ {
		g.Add(iri(fmt.Sprintf("s%d", i%500)), iri("big"), iri(fmt.Sprintf("o%d", i)))
	}
	for i := 0; i < 20; i++ {
		g.Add(iri(fmt.Sprintf("s%d", i)), iri("tiny"), iri(fmt.Sprintf("t%d", i)))
	}
	g.Dedup()
	return g
}

func TestEngineUsesBroadcastForSmallSide(t *testing.T) {
	g := skewedGraph()
	q := sparql.MustParse(`SELECT * WHERE { ?s <big> ?o . ?s <tiny> ?t }`)
	ctx := dataflow.NewContext(2)
	ctx.ResetMetrics()
	rel, _, err := Evaluate(q, InputsFromGraph(g, q), g.Dict, Options{Context: ctx, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := ctx.Metrics()
	if m.RowsBroadcast == 0 {
		t.Error("small side not broadcast")
	}
	if m.RowsShuffled != 0 {
		t.Errorf("broadcast-eligible join still shuffled %d rows", m.RowsShuffled)
	}
	// Correctness against the oracle.
	if want := Naive(g, q); !sameRelation(rel, want) {
		t.Errorf("broadcast join disagrees with oracle: %d vs %d", rel.Card(), want.Card())
	}
}

func TestBroadcastDisabled(t *testing.T) {
	g := skewedGraph()
	q := sparql.MustParse(`SELECT * WHERE { ?s <big> ?o . ?s <tiny> ?t }`)
	ctx := dataflow.NewContext(2)
	ctx.ResetMetrics()
	relOff, _, err := Evaluate(q, InputsFromGraph(g, q), g.Dict,
		Options{Context: ctx, Partitions: 4, BroadcastThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	m := ctx.Metrics()
	if m.RowsBroadcast != 0 {
		t.Error("broadcast used despite being disabled")
	}
	if m.RowsShuffled == 0 {
		t.Error("disabled broadcast must fall back to shuffle join")
	}
	relOn, _, err := Evaluate(q, InputsFromGraph(g, q), g.Dict, Options{Context: ctx, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRelation(relOff, relOn) {
		t.Error("broadcast and shuffle joins disagree")
	}
}

func TestBroadcastThresholdRespected(t *testing.T) {
	g := skewedGraph()
	q := sparql.MustParse(`SELECT * WHERE { ?s <big> ?o . ?s <tiny> ?t }`)
	ctx := dataflow.NewContext(2)
	ctx.ResetMetrics()
	// Threshold below the small side's 20 rows: no broadcast.
	_, _, err := Evaluate(q, InputsFromGraph(g, q), g.Dict,
		Options{Context: ctx, Partitions: 4, BroadcastThreshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Metrics().RowsBroadcast != 0 {
		t.Error("threshold 5 still broadcast a 20-row side")
	}
}
