package engine

import (
	"strings"
	"testing"

	"ping/internal/rdf"
	"ping/internal/sparql"
)

func rel(vars []string, rows ...[]rdf.ID) *Relation {
	return &Relation{Vars: vars, Rows: rows}
}

func TestProject(t *testing.T) {
	r := rel([]string{"a", "b", "c"}, []rdf.ID{1, 2, 3}, []rdf.ID{4, 5, 6})
	p, err := r.Project([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Card() != 2 || p.Rows[0][0] != 3 || p.Rows[0][1] != 1 {
		t.Errorf("Project rows = %v", p.Rows)
	}
	if _, err := r.Project([]string{"zz"}); err == nil {
		t.Error("projecting unbound variable succeeded")
	}
}

func TestDistinctRelation(t *testing.T) {
	r := rel([]string{"a"}, []rdf.ID{1}, []rdf.ID{2}, []rdf.ID{1}, []rdf.ID{1})
	d := r.Distinct()
	if d.Card() != 2 {
		t.Errorf("Distinct Card = %d", d.Card())
	}
	if d.Rows[0][0] != 1 || d.Rows[1][0] != 2 {
		t.Error("Distinct must preserve first-occurrence order")
	}
}

func TestLimitRelation(t *testing.T) {
	r := rel([]string{"a"}, []rdf.ID{1}, []rdf.ID{2}, []rdf.ID{3})
	if r.Limit(2).Card() != 2 {
		t.Error("Limit(2)")
	}
	if r.Limit(0).Card() != 3 {
		t.Error("Limit(0) must be a no-op")
	}
	if r.Limit(99).Card() != 3 {
		t.Error("Limit beyond size must be a no-op")
	}
}

func TestBindingMaps(t *testing.T) {
	r := rel([]string{"x", "y"}, []rdf.ID{7, 8})
	m := r.BindingMaps()
	if len(m) != 1 || m[0]["x"] != 7 || m[0]["y"] != 8 {
		t.Errorf("BindingMaps = %v", m)
	}
}

func TestRelationString(t *testing.T) {
	r := rel([]string{"x", "y"}, []rdf.ID{1, 2})
	if s := r.String(); !strings.Contains(s, "?x") || !strings.Contains(s, "1 rows") {
		t.Errorf("String = %q", s)
	}
}

func TestBuildRelationConstFilters(t *testing.T) {
	d := rdf.NewDict()
	p := d.EncodeIRI("p")
	a, b, c := d.EncodeIRI("a"), d.EncodeIRI("b"), d.EncodeIRI("c")
	rows := []rdf.SOPair{{S: a, O: b}, {S: a, O: c}, {S: b, O: c}}
	pat := sparql.TriplePattern{S: rdf.NewIRI("a"), P: rdf.NewIRI("p"), O: rdf.NewVar("o")}
	got, err := BuildRelation(PatternInput{Pattern: pat, Groups: []PropGroup{{Prop: p, Rows: rdf.RawPairs(rows)}}}, d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != 2 {
		t.Errorf("Card = %d, want 2", got.Card())
	}
	for _, row := range got.Rows {
		if row[0] != b && row[0] != c {
			t.Errorf("unexpected binding %v", row)
		}
	}
}

func TestBuildRelationWrongPropGroupSkipped(t *testing.T) {
	d := rdf.NewDict()
	p, q := d.EncodeIRI("p"), d.EncodeIRI("q")
	a, b := d.EncodeIRI("a"), d.EncodeIRI("b")
	pat := sparql.TriplePattern{S: rdf.NewVar("s"), P: rdf.NewIRI("p"), O: rdf.NewVar("o")}
	got, err := BuildRelation(PatternInput{
		Pattern: pat,
		Groups: []PropGroup{
			{Prop: p, Rows: rdf.RawPairs([]rdf.SOPair{{S: a, O: b}})},
			{Prop: q, Rows: rdf.RawPairs([]rdf.SOPair{{S: b, O: a}})}, // must be ignored
		},
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != 1 {
		t.Errorf("Card = %d, want 1 (group with wrong property must be skipped)", got.Card())
	}
}

func TestBuildRelationVariablePredicateBindsP(t *testing.T) {
	d := rdf.NewDict()
	p, q := d.EncodeIRI("p"), d.EncodeIRI("q")
	a, b := d.EncodeIRI("a"), d.EncodeIRI("b")
	pat := sparql.TriplePattern{S: rdf.NewVar("s"), P: rdf.NewVar("pp"), O: rdf.NewVar("o")}
	got, err := BuildRelation(PatternInput{
		Pattern: pat,
		Groups: []PropGroup{
			{Prop: p, Rows: rdf.RawPairs([]rdf.SOPair{{S: a, O: b}})},
			{Prop: q, Rows: rdf.RawPairs([]rdf.SOPair{{S: b, O: a}})},
		},
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != 2 || len(got.Vars) != 3 {
		t.Fatalf("got %v", got)
	}
	pi := got.varIndex("pp")
	seen := map[rdf.ID]bool{}
	for _, row := range got.Rows {
		seen[row[pi]] = true
	}
	if !seen[p] || !seen[q] {
		t.Error("predicate variable not bound to group properties")
	}
}

func TestPatternInputTotalRows(t *testing.T) {
	in := PatternInput{Groups: []PropGroup{
		{Rows: rdf.RawPairs(make([]rdf.SOPair, 3))},
		{Rows: rdf.RawPairs(make([]rdf.SOPair, 5))},
	}}
	if in.TotalRows() != 8 {
		t.Errorf("TotalRows = %d", in.TotalRows())
	}
}
