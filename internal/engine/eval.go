package engine

import (
	"time"

	"ping/internal/dataflow"
	"ping/internal/obs"
	"ping/internal/rdf"
	"ping/internal/sparql"
)

// Stats reports what one evaluation touched and produced.
type Stats struct {
	// InputRows is the number of vertical-partition rows fed into the
	// pattern relations — the paper's "data access / loaded rows" metric.
	InputRows int64
	// IntermediateRows counts rows materialized by joins.
	IntermediateRows int64
	// OutputRows is the final result cardinality.
	OutputRows int64
	// Joins is the number of binary joins executed.
	Joins int
	// PeakRows is the largest relation cardinality seen while joining
	// (inputs or intermediates) — the memory high-water mark of the
	// evaluation, charged to the query's resource ledger.
	PeakRows int64
}

func (s *Stats) observePeak(card int) {
	if int64(card) > s.PeakRows {
		s.PeakRows = int64(card)
	}
}

// Options configures Evaluate.
type Options struct {
	// Context supplies the dataflow executor; nil means a private
	// single-worker context.
	Context *dataflow.Context
	// Partitions is the shuffle fan-out for joins (<=0: context default).
	Partitions int
	// BroadcastThreshold: when one join side has at most this many rows
	// (and is at least 4x smaller than the other), it is broadcast to
	// every partition instead of shuffling both sides — Spark's broadcast
	// hash join. 0 means the default (5000); negative disables.
	BroadcastThreshold int
	// Metrics receives the join counters and timing histograms (nil:
	// obs.Default).
	Metrics *obs.Registry
	// Span, when non-nil, receives one child span per executed join with
	// input/output cardinalities — the engine layer of a query trace.
	Span *obs.Span
}

// defaultBroadcastThreshold mirrors Spark's autoBroadcastJoinThreshold
// idea at our row-count scale.
const defaultBroadcastThreshold = 5000

func (o Options) broadcastThreshold() int {
	switch {
	case o.BroadcastThreshold < 0:
		return 0
	case o.BroadcastThreshold == 0:
		return defaultBroadcastThreshold
	default:
		return o.BroadcastThreshold
	}
}

// Evaluate computes the BGP result from per-pattern inputs. inputs[i]
// corresponds to q.Patterns[i]. The join order is chosen greedily:
// start from the smallest relation and repeatedly join with the smallest
// relation sharing a variable, falling back to a cross product only when
// the pattern graph is disconnected.
func Evaluate(q *sparql.Query, inputs []PatternInput, dict Dict, opts Options) (*Relation, *Stats, error) {
	return EvaluatePaths(q, inputs, nil, dict, opts)
}

// joinAll reduces the relation list to one via greedy hash joins,
// recording per-join timings into the options' registry and one child
// span per join under the options' span.
func joinAll(ctx *dataflow.Context, rels []*Relation, opts Options, stats *Stats) (*Relation, error) {
	if len(rels) == 0 {
		return &Relation{}, nil
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe("engine_joins_total", "binary joins executed")
	reg.Describe("engine_join_seconds", "wall-clock duration of one binary join")
	reg.Describe("engine_intermediate_rows_total", "rows materialized by joins")
	joinsC := reg.Counter("engine_joins_total", nil)
	joinSec := reg.Histogram("engine_join_seconds", obs.TimeBuckets, nil)
	interRows := reg.Counter("engine_intermediate_rows_total", nil)

	remaining := append([]*Relation(nil), rels...)
	// Start with the smallest relation.
	cur := popSmallest(&remaining, nil)
	stats.observePeak(cur.Card())
	for len(remaining) > 0 {
		next := popSmallest(&remaining, cur)
		stats.observePeak(next.Card())
		sp := opts.Span.StartChild("join")
		sp.SetAttr("left_rows", cur.Card())
		sp.SetAttr("right_rows", next.Card())
		t0 := time.Now()
		joined := join(ctx, cur, next, opts)
		el := time.Since(t0)
		sp.SetAttr("out_rows", joined.Card())
		sp.End()
		joinsC.Inc()
		joinSec.Observe(el.Seconds())
		interRows.Add(int64(joined.Card()))
		stats.Joins++
		stats.IntermediateRows += int64(joined.Card())
		stats.observePeak(joined.Card())
		cur = joined
	}
	return cur, nil
}

// popSmallest removes and returns the smallest relation; when cur is
// non-nil it prefers relations sharing a variable with cur (to avoid
// cross products) and only falls back to an unconnected one when none
// shares.
func popSmallest(rels *[]*Relation, cur *Relation) *Relation {
	best, bestShared := -1, false
	for i, r := range *rels {
		shared := cur != nil && len(cur.sharedVars(r)) > 0
		switch {
		case best < 0:
			best, bestShared = i, shared
		case shared && !bestShared:
			best, bestShared = i, shared
		case shared == bestShared && r.Card() < (*rels)[best].Card():
			best = i
		}
	}
	r := (*rels)[best]
	*rels = append((*rels)[:best], (*rels)[best+1:]...)
	return r
}

// join computes the natural join of two relations on the dataflow
// engine: a broadcast hash join when one side is small (per the options'
// threshold), a partitioned shuffle hash join otherwise. With no shared
// variables it degrades to a cross product.
func join(ctx *dataflow.Context, left, right *Relation, opts Options) *Relation {
	parts := opts.Partitions
	shared := left.sharedVars(right)
	outVars := append([]string(nil), left.Vars...)
	rightExtra := make([]int, 0, len(right.Vars))
	for i, v := range right.Vars {
		if left.varIndex(v) < 0 {
			outVars = append(outVars, v)
			rightExtra = append(rightExtra, i)
		}
	}

	if len(shared) == 0 {
		// Cross product (disconnected BGP).
		out := &Relation{Vars: outVars, Rows: make([][]rdf.ID, 0, len(left.Rows)*len(right.Rows))}
		for _, lr := range left.Rows {
			for _, rr := range right.Rows {
				row := make([]rdf.ID, 0, len(outVars))
				row = append(row, lr...)
				for _, i := range rightExtra {
					row = append(row, rr[i])
				}
				out.Rows = append(out.Rows, row)
			}
		}
		return out
	}

	lIdx := make([]int, len(shared))
	rIdx := make([]int, len(shared))
	for i, v := range shared {
		lIdx[i] = left.varIndex(v)
		rIdx[i] = right.varIndex(v)
	}
	// Keys over one or two 32-bit IDs pack exactly into a uint64; wider
	// keys are FNV-1a hashes, so every probe match must be verified
	// against the actual key columns to filter hash collisions.
	verify := len(shared) > 2

	// Broadcast hash join when one side is small enough: the big side is
	// never shuffled.
	if threshold := opts.broadcastThreshold(); threshold > 0 {
		small, big := right, left
		smallIdx, bigIdx := rIdx, lIdx
		smallIsRight := true
		if left.Card() < right.Card() {
			small, big = left, right
			smallIdx, bigIdx = lIdx, rIdx
			smallIsRight = false
		}
		if small.Card() <= threshold && small.Card()*4 <= big.Card() {
			smallRows := make([]dataflow.Pair[uint64, []rdf.ID], len(small.Rows))
			for i, row := range small.Rows {
				smallRows[i] = dataflow.Pair[uint64, []rdf.ID]{Key: joinKey(row, smallIdx), Value: row}
			}
			bigKeyed := dataflow.Map(
				dataflow.Parallelize(ctx, big.Rows, parts),
				func(row []rdf.ID) dataflow.Pair[uint64, []rdf.ID] {
					return dataflow.Pair[uint64, []rdf.ID]{Key: joinKey(row, bigIdx), Value: row}
				})
			joined := dataflow.BroadcastJoin(bigKeyed, smallRows)
			out := &Relation{Vars: outVars}
			for _, pr := range joined.Collect() {
				lr, rr := pr.Value.Left, pr.Value.Right
				if !smallIsRight {
					lr, rr = rr, lr
				}
				if verify && !rowsMatch(lr, lIdx, rr, rIdx) {
					continue
				}
				row := make([]rdf.ID, 0, len(outVars))
				row = append(row, lr...)
				for _, i := range rightExtra {
					row = append(row, rr[i])
				}
				out.Rows = append(out.Rows, row)
			}
			return out
		}
	}

	lKeyed := dataflow.Map(
		dataflow.Parallelize(ctx, left.Rows, parts),
		func(row []rdf.ID) dataflow.Pair[uint64, []rdf.ID] {
			return dataflow.Pair[uint64, []rdf.ID]{Key: joinKey(row, lIdx), Value: row}
		})
	rKeyed := dataflow.Map(
		dataflow.Parallelize(ctx, right.Rows, parts),
		func(row []rdf.ID) dataflow.Pair[uint64, []rdf.ID] {
			return dataflow.Pair[uint64, []rdf.ID]{Key: joinKey(row, rIdx), Value: row}
		})
	joined := dataflow.JoinByKey(lKeyed, rKeyed, parts, func(k uint64) uint64 { return k })
	out := &Relation{Vars: outVars}
	for _, pr := range joined.Collect() {
		lr, rr := pr.Value.Left, pr.Value.Right
		if verify && !rowsMatch(lr, lIdx, rr, rIdx) {
			continue
		}
		row := make([]rdf.ID, 0, len(outVars))
		row = append(row, lr...)
		for _, i := range rightExtra {
			row = append(row, rr[i])
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// InputsFromGraph builds per-pattern inputs directly from a graph's triple
// list — the whole-graph evaluation used by tests and by the oracle
// comparison path (no partitioning, no pruning).
func InputsFromGraph(g *rdf.Graph, q *sparql.Query) []PatternInput {
	byProp := make(map[rdf.ID][]rdf.SOPair)
	for _, t := range g.Triples {
		byProp[t.P] = append(byProp[t.P], rdf.SOPair{S: t.S, O: t.O})
	}
	inputs := make([]PatternInput, len(q.Patterns))
	for i, pat := range q.Patterns {
		in := PatternInput{Pattern: pat}
		if pat.P.IsConcrete() {
			if p := g.Dict.Lookup(pat.P); p != rdf.NoID {
				in.Groups = []PropGroup{{Prop: p, Rows: rdf.RawPairs(byProp[p])}}
			}
		} else {
			for p, rows := range byProp {
				in.Groups = append(in.Groups, PropGroup{Prop: p, Rows: rdf.RawPairs(rows)})
			}
		}
		inputs[i] = in
	}
	return inputs
}
