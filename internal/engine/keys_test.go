package engine

import (
	"math/rand"
	"testing"

	"ping/internal/dataflow"
	"ping/internal/rdf"
)

// nestedLoopJoin is the brute-force oracle: natural join by comparing
// shared columns pairwise, no hashing anywhere.
func nestedLoopJoin(left, right *Relation) *Relation {
	shared, lIdx, rIdx := sharedVars(left, right)
	out := &Relation{Vars: joinedVars(left, right, shared)}
	rKeep := keepIndexes(right, shared)
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			if !rowsMatch(lr, lIdx, rr, rIdx) {
				continue
			}
			row := make([]rdf.ID, 0, len(out.Vars))
			row = append(row, lr...)
			for _, i := range rKeep {
				row = append(row, rr[i])
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

func sharedVars(left, right *Relation) (shared []string, lIdx, rIdx []int) {
	for li, v := range left.Vars {
		for ri, w := range right.Vars {
			if v == w {
				shared = append(shared, v)
				lIdx = append(lIdx, li)
				rIdx = append(rIdx, ri)
			}
		}
	}
	return
}

func joinedVars(left, right *Relation, shared []string) []string {
	vars := append([]string(nil), left.Vars...)
	for _, v := range right.Vars {
		dup := false
		for _, s := range shared {
			if v == s {
				dup = true
			}
		}
		if !dup {
			vars = append(vars, v)
		}
	}
	return vars
}

func keepIndexes(right *Relation, shared []string) []int {
	var keep []int
	for i, v := range right.Vars {
		dup := false
		for _, s := range shared {
			if v == s {
				dup = true
			}
		}
		if !dup {
			keep = append(keep, i)
		}
	}
	return keep
}

// TestJoinManySharedVars drives the join through the hashed-key path
// with 3+ shared columns (where the uint64 key is an FNV-1a hash, not a
// bijective packing) and checks the result against the nested-loop
// oracle: the full-row verification on probe must filter out any hash
// collisions.
func TestJoinManySharedVars(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, nShared := range []int{3, 4} {
			vars := make([]string, nShared)
			for i := range vars {
				vars[i] = string(rune('a' + i))
			}
			left := &Relation{Vars: append(append([]string{}, vars...), "l")}
			right := &Relation{Vars: append(append([]string{}, vars...), "r")}
			// A tiny value domain forces many equal keys and many
			// near-identical rows; the small right side keeps the
			// broadcast variant eligible (small*4 <= big).
			for i := 0; i < 60; i++ {
				lrow := make([]rdf.ID, nShared+1)
				for j := 0; j < nShared; j++ {
					lrow[j] = rdf.ID(rng.Intn(3))
				}
				lrow[nShared] = rdf.ID(100 + i)
				left.Rows = append(left.Rows, lrow)
			}
			for i := 0; i < 12; i++ {
				rrow := make([]rdf.ID, nShared+1)
				for j := 0; j < nShared; j++ {
					rrow[j] = rdf.ID(rng.Intn(3))
				}
				rrow[nShared] = rdf.ID(200 + i)
				right.Rows = append(right.Rows, rrow)
			}

			want := nestedLoopJoin(left, right)
			for _, broadcast := range []bool{false, true} {
				opts := Options{}
				if !broadcast {
					opts.BroadcastThreshold = -1
				}
				got := join(dataflow.NewContext(2), left, right, opts)
				if !sameRelation(got, want) {
					t.Fatalf("seed %d shared %d broadcast %v: join %d rows, oracle %d",
						seed, nShared, broadcast, got.Card(), want.Card())
				}
			}
		}
	}
}

// TestJoinKeyPacking: with 1 or 2 shared columns the key packs the IDs
// bijectively, so rows that agree on hash must agree on value; spot-check
// that distinct column values never collide.
func TestJoinKeyPacking(t *testing.T) {
	rows := [][]rdf.ID{
		{1, 2},
		{2, 1},
		{1 << 31, 0},
		{0, 1 << 31},
		{0, 0},
	}
	seen := make(map[uint64][]rdf.ID)
	for _, row := range rows {
		k := joinKey(row, []int{0, 1})
		if prev, ok := seen[k]; ok {
			t.Fatalf("rows %v and %v pack to the same key %d", prev, row, k)
		}
		seen[k] = row
	}
}

// TestDistinctCollisionSafe: Distinct dedups via hashed row sets; rows
// with equal hashes but different values must both survive. The rowSet
// falls back to full-row equality inside each bucket, so correctness
// cannot depend on hash quality — verify with many low-entropy rows.
func TestDistinctCollisionSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rel := &Relation{Vars: []string{"a", "b", "c"}}
	uniq := make(map[[3]rdf.ID]bool)
	for i := 0; i < 500; i++ {
		row := [3]rdf.ID{rdf.ID(rng.Intn(4)), rdf.ID(rng.Intn(4)), rdf.ID(rng.Intn(4))}
		uniq[row] = true
		rel.Rows = append(rel.Rows, []rdf.ID{row[0], row[1], row[2]})
		// Duplicate some rows immediately to stress the dedup.
		if i%3 == 0 {
			rel.Rows = append(rel.Rows, []rdf.ID{row[0], row[1], row[2]})
		}
	}
	d := rel.Distinct()
	if d.Card() != len(uniq) {
		t.Fatalf("Distinct kept %d rows, want %d", d.Card(), len(uniq))
	}
}
