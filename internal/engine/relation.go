// Package engine implements BGP evaluation for PING and its baselines: it
// turns per-pattern vertical-partition rows into relations, joins them
// with hash joins executed on the dataflow engine (greedy smallest-first
// join ordering, the same "perform small joins first" policy §5.6 credits
// to S2RDF), and projects the requested variables.
//
// A naive backtracking evaluator over a plain rdf.Graph is included as the
// correctness oracle for the paper's soundness/completeness claims
// (Lemmas 4.3–4.4, Theorem 4.5).
package engine

import (
	"fmt"
	"sort"
	"strings"

	"ping/internal/rdf"
	"ping/internal/sparql"
)

// Dict is the term dictionary surface the engine needs: term→ID for
// constant filters and path IRIs, ID→term only for FILTER expression
// evaluation. Both *rdf.Dict and the per-epoch *rdf.DictView satisfy it;
// layouts hand the engine a DictView so evaluation is pinned to one
// dictionary epoch.
type Dict interface {
	Lookup(t rdf.Term) rdf.ID
	Term(id rdf.ID) rdf.Term
}

// Relation is a set of variable bindings in columnar-by-row form: Vars
// names the columns, each row holds one rdf.ID per column.
type Relation struct {
	Vars []string
	Rows [][]rdf.ID
}

// Card returns the number of rows.
func (r *Relation) Card() int { return len(r.Rows) }

// varIndex returns the column index of v, or -1.
func (r *Relation) varIndex(v string) int {
	for i, name := range r.Vars {
		if name == v {
			return i
		}
	}
	return -1
}

// sharedVars returns the variables common to both relations, in r's
// column order.
func (r *Relation) sharedVars(s *Relation) []string {
	var out []string
	for _, v := range r.Vars {
		if s.varIndex(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// Project returns a relation restricted to the named columns. Requesting a
// variable the relation does not bind is an error.
func (r *Relation) Project(vars []string) (*Relation, error) {
	idx := make([]int, len(vars))
	for i, v := range vars {
		idx[i] = r.varIndex(v)
		if idx[i] < 0 {
			return nil, fmt.Errorf("engine: projection variable ?%s not bound by %v", v, r.Vars)
		}
	}
	out := &Relation{Vars: append([]string(nil), vars...), Rows: make([][]rdf.ID, len(r.Rows))}
	for i, row := range r.Rows {
		nr := make([]rdf.ID, len(idx))
		for j, k := range idx {
			nr[j] = row[k]
		}
		out.Rows[i] = nr
	}
	return out, nil
}

// Distinct returns the relation with duplicate rows removed, preserving
// first-occurrence order.
func (r *Relation) Distinct() *Relation {
	seen := newRowSet(len(r.Rows))
	out := &Relation{Vars: r.Vars, Rows: make([][]rdf.ID, 0, len(r.Rows))}
	for _, row := range r.Rows {
		if seen.add(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Limit returns the first n rows (all rows if n <= 0).
func (r *Relation) Limit(n int) *Relation {
	if n <= 0 || n >= len(r.Rows) {
		return r
	}
	return &Relation{Vars: r.Vars, Rows: r.Rows[:n]}
}

// FNV-1a parameters. Row hashing inlines the FNV-1a loop (folding each
// 32-bit ID in little-endian byte order) instead of going through
// hash/fnv, which would allocate a hasher and a []byte conversion per
// row on the join and distinct hot paths.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashRow hashes every column of a row, allocation-free.
func hashRow(row []rdf.ID) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range row {
		h = (h ^ uint64(v&0xff)) * fnvPrime64
		h = (h ^ uint64((v>>8)&0xff)) * fnvPrime64
		h = (h ^ uint64((v>>16)&0xff)) * fnvPrime64
		h = (h ^ uint64(v>>24)) * fnvPrime64
	}
	return h
}

// hashRowCols hashes the selected columns of a row, allocation-free.
func hashRowCols(row []rdf.ID, idx []int) uint64 {
	h := uint64(fnvOffset64)
	for _, k := range idx {
		v := row[k]
		h = (h ^ uint64(v&0xff)) * fnvPrime64
		h = (h ^ uint64((v>>8)&0xff)) * fnvPrime64
		h = (h ^ uint64((v>>16)&0xff)) * fnvPrime64
		h = (h ^ uint64(v>>24)) * fnvPrime64
	}
	return h
}

// joinKey builds the uint64 join key over the given columns. Up to two
// 32-bit IDs pack exactly (no collisions possible); wider keys fall back
// to FNV-1a, and the join must then verify key-column equality on every
// probe (rowsMatch) to stay exact.
func joinKey(row []rdf.ID, idx []int) uint64 {
	switch len(idx) {
	case 0:
		return 0
	case 1:
		return uint64(row[idx[0]])
	case 2:
		return uint64(row[idx[0]])<<32 | uint64(row[idx[1]])
	default:
		return hashRowCols(row, idx)
	}
}

// rowsMatch reports whether two rows agree on the paired columns.
func rowsMatch(a []rdf.ID, aIdx []int, b []rdf.ID, bIdx []int) bool {
	for i := range aIdx {
		if a[aIdx[i]] != b[bIdx[i]] {
			return false
		}
	}
	return true
}

// rowsEqual reports whether two rows are identical.
func rowsEqual(a, b []rdf.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowSet is a set of rows keyed by their FNV-1a hash, with full-row
// equality on collision, so membership is exact while keys stay
// allocation-free uint64s.
type rowSet struct {
	buckets map[uint64][][]rdf.ID
	size    int
}

func newRowSet(capacity int) *rowSet {
	return &rowSet{buckets: make(map[uint64][][]rdf.ID, capacity)}
}

// add inserts the row and reports whether it was absent before.
func (s *rowSet) add(row []rdf.ID) bool {
	h := hashRow(row)
	for _, have := range s.buckets[h] {
		if rowsEqual(have, row) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], row)
	s.size++
	return true
}

// has reports membership without inserting.
func (s *rowSet) has(row []rdf.ID) bool {
	for _, have := range s.buckets[hashRow(row)] {
		if rowsEqual(have, row) {
			return true
		}
	}
	return false
}

func (s *rowSet) len() int { return s.size }

// Sorted returns the rows sorted lexicographically; used by tests to
// compare result sets deterministically.
func (r *Relation) Sorted() [][]rdf.ID {
	rows := append([][]rdf.ID(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
	return rows
}

// String renders a compact description for debugging.
func (r *Relation) String() string {
	return fmt.Sprintf("Relation(?%s, %d rows)", strings.Join(r.Vars, ", ?"), len(r.Rows))
}

// applyFilters keeps the rows satisfying every FILTER expression. A
// filter referencing a variable the relation does not bind eliminates the
// row (SPARQL's unbound-is-error semantics).
func applyFilters(r *Relation, filters []sparql.Expr, dict Dict) *Relation {
	if len(filters) == 0 {
		return r
	}
	out := &Relation{Vars: r.Vars, Rows: make([][]rdf.ID, 0, len(r.Rows))}
	colOf := make(map[string]int, len(r.Vars))
	for i, v := range r.Vars {
		colOf[v] = i
	}
	for _, row := range r.Rows {
		lookup := func(name string) (rdf.Term, bool) {
			if i, ok := colOf[name]; ok {
				return dict.Term(row[i]), true
			}
			return rdf.Term{}, false
		}
		keep := true
		for _, f := range filters {
			if !f.Eval(lookup) {
				keep = false
				break
			}
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// BindingMaps converts the relation to the map form used by the oracle
// and by user-facing result printing.
func (r *Relation) BindingMaps() []map[string]rdf.ID {
	out := make([]map[string]rdf.ID, len(r.Rows))
	for i, row := range r.Rows {
		m := make(map[string]rdf.ID, len(r.Vars))
		for j, v := range r.Vars {
			m[v] = row[j]
		}
		out[i] = m
	}
	return out
}

// PropGroup is the slice of a pattern's input rows contributed by one
// property's vertical partition. Rows is a PairBlock: resident groups stay
// in their compressed form and are only streamed (never re-materialized)
// when the pattern relation is built.
type PropGroup struct {
	Prop rdf.ID
	Rows rdf.PairBlock
}

// PatternInput feeds one triple pattern: the pattern itself plus its rows,
// grouped by the property file they came from (one group for constant-
// predicate patterns, several for variable predicates).
type PatternInput struct {
	Pattern sparql.TriplePattern
	Groups  []PropGroup
}

// TotalRows returns the number of input rows across groups — the
// "data access" contribution of the pattern.
func (in PatternInput) TotalRows() int {
	n := 0
	for _, g := range in.Groups {
		n += g.Rows.Len()
	}
	return n
}

// BuildRelation turns a pattern's input rows into a relation over the
// pattern's variables, applying constant filters (on subject/object) and
// repeated-variable equality (e.g. ?x :p ?x).
func BuildRelation(in PatternInput, dict Dict) (*Relation, error) {
	pat := in.Pattern
	vars := pat.Vars()
	rel := &Relation{Vars: vars}

	var sConst, oConst rdf.ID
	sIsConst, oIsConst := pat.S.IsConcrete(), pat.O.IsConcrete()
	if sIsConst {
		sConst = dict.Lookup(pat.S)
	}
	if oIsConst {
		oConst = dict.Lookup(pat.O)
	}
	var pConst rdf.ID
	pIsConst := pat.P.IsConcrete()
	if pIsConst {
		pConst = dict.Lookup(pat.P)
	}
	// A constant absent from the dictionary cannot match anything.
	if (sIsConst && sConst == rdf.NoID) || (oIsConst && oConst == rdf.NoID) ||
		(pIsConst && pConst == rdf.NoID) {
		return rel, nil
	}

	// Column layout per row: the distinct variables in SPO order.
	colOf := make(map[string]int, len(vars))
	for i, v := range vars {
		colOf[v] = i
	}
	// Row storage is carved from chunked arenas — one allocation per ~4k
	// rows instead of one per row — and the row index is sized up front
	// when no constant filter can shrink it.
	nv := len(vars)
	var arena []rdf.ID
	newRow := func() []rdf.ID {
		if len(arena) < nv {
			arena = make([]rdf.ID, 4096*nv)
		}
		row := arena[:nv:nv]
		arena = arena[nv:]
		return row
	}
	if !sIsConst && !oIsConst {
		total := 0
		for _, g := range in.Groups {
			if !pIsConst || g.Prop == pConst {
				total += g.Rows.Len()
			}
		}
		rel.Rows = make([][]rdf.ID, 0, total)
	}
	for _, g := range in.Groups {
		if pIsConst && g.Prop != pConst {
			continue
		}
		prop := g.Prop
		g.Rows.ForEach(func(pr rdf.SOPair) {
			if sIsConst && pr.S != sConst {
				return
			}
			if oIsConst && pr.O != oConst {
				return
			}
			row := newRow()
			ok := true
			// Fill in SPO order; a repeated variable (e.g. ?x :p ?x) must
			// receive the same value at every occurrence.
			var seen [3]bool
			set := func(term rdf.Term, val rdf.ID) {
				if !ok || !term.IsVar() {
					return
				}
				c := colOf[term.Value]
				if seen[c] && row[c] != val {
					ok = false
					return
				}
				row[c] = val
				seen[c] = true
			}
			set(pat.S, pr.S)
			set(pat.P, prop)
			set(pat.O, pr.O)
			if ok {
				rel.Rows = append(rel.Rows, row)
			}
		})
	}
	return rel, nil
}
