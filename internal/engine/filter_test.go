package engine

import (
	"fmt"
	"testing"

	"ping/internal/rdf"
	"ping/internal/sparql"
)

// priceGraph builds products with numeric prices.
func priceGraph() *rdf.Graph {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	for i, price := range []string{"5", "15", "25", "35", "45"} {
		p := iri(fmt.Sprintf("prod%d", i))
		g.Add(p, iri("price"), rdf.NewTypedLiteral(price, "http://www.w3.org/2001/XMLSchema#integer"))
		g.Add(p, iri("label"), rdf.NewLiteral(fmt.Sprintf("product %d", i)))
	}
	return g
}

func TestFilterNumericRange(t *testing.T) {
	g := priceGraph()
	q := sparql.MustParse(`SELECT * WHERE {
		?p <price> ?v .
		FILTER (?v > 10 && ?v < 40)
	}`)
	rel, _, err := Evaluate(q, InputsFromGraph(g, q), g.Dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 3 { // 15, 25, 35
		t.Errorf("Card = %d, want 3", rel.Card())
	}
	if want := Naive(g, q); !sameRelation(rel, want) {
		t.Errorf("Evaluate disagrees with Naive under FILTER: %d vs %d", rel.Card(), want.Card())
	}
}

func TestFilterOnDroppedVariable(t *testing.T) {
	// The filter references ?v, the projection keeps only ?p.
	g := priceGraph()
	q := sparql.MustParse(`SELECT ?p WHERE {
		?p <price> ?v .
		FILTER (?v >= 25)
	}`)
	rel, _, err := Evaluate(q, InputsFromGraph(g, q), g.Dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 3 || len(rel.Vars) != 1 {
		t.Errorf("Card = %d vars = %v", rel.Card(), rel.Vars)
	}
	if want := Naive(g, q); !sameRelation(rel, want) {
		t.Error("mismatch with oracle on projected filter")
	}
}

func TestFilterAcrossJoin(t *testing.T) {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("a"), iri("knows"), iri("b"))
	g.Add(iri("b"), iri("age"), rdf.NewTypedLiteral("30", "http://www.w3.org/2001/XMLSchema#integer"))
	g.Add(iri("a"), iri("knows"), iri("c"))
	g.Add(iri("c"), iri("age"), rdf.NewTypedLiteral("17", "http://www.w3.org/2001/XMLSchema#integer"))
	q := sparql.MustParse(`SELECT ?f WHERE {
		<a> <knows> ?f .
		?f <age> ?age .
		FILTER (?age >= 18)
	}`)
	rel, _, err := Evaluate(q, InputsFromGraph(g, q), g.Dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 1 || g.Dict.Term(rel.Rows[0][0]).Value != "b" {
		t.Errorf("adult friends = %v", rel.Rows)
	}
}

func TestFilterIRIEqualityInQuery(t *testing.T) {
	g := priceGraph()
	q := sparql.MustParse(`SELECT * WHERE {
		?p <price> ?v .
		FILTER (?p = <prod2>)
	}`)
	rel, _, err := Evaluate(q, InputsFromGraph(g, q), g.Dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 1 {
		t.Errorf("Card = %d, want 1", rel.Card())
	}
}

func TestFilterUnboundVariableEliminates(t *testing.T) {
	g := priceGraph()
	q := sparql.MustParse(`SELECT * WHERE {
		?p <price> ?v .
		FILTER (?nosuch > 1)
	}`)
	rel, _, err := Evaluate(q, InputsFromGraph(g, q), g.Dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 0 {
		t.Errorf("filter on unbound var kept %d rows", rel.Card())
	}
}

func TestFilterWithPaths(t *testing.T) {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("a"), iri("next"), iri("b"))
	g.Add(iri("b"), iri("next"), iri("c"))
	g.Add(iri("a"), iri("val"), rdf.NewTypedLiteral("1", "http://www.w3.org/2001/XMLSchema#integer"))
	g.Add(iri("b"), iri("val"), rdf.NewTypedLiteral("2", "http://www.w3.org/2001/XMLSchema#integer"))
	g.Add(iri("c"), iri("val"), rdf.NewTypedLiteral("3", "http://www.w3.org/2001/XMLSchema#integer"))
	q := sparql.MustParse(`SELECT * WHERE {
		<a> <next>+ ?n .
		?n <val> ?v .
		FILTER (?v > 2)
	}`)
	rel, _, err := EvaluatePaths(q, InputsFromGraph(g, q), PathInputsFromGraph(g, q), g.Dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 1 || g.Dict.Term(rel.Rows[0][0]).Value != "c" {
		t.Errorf("path+filter = %v", rel.Rows)
	}
}
