package engine

import (
	"encoding/binary"
	"fmt"

	"ping/internal/rdf"
)

// Binary relation serialization, used by the durable-cursor subsystem to
// hibernate a PQA's accumulated per-pattern relations and cached answers
// to storage and rehydrate them on resume.
//
// Format (all integers unsigned varints):
//
//	nVars | nVars × (len | bytes) | nRows | nRows × nVars × ID
//
// Row order is preserved exactly — resumed evaluation must see the rows
// in the order the interrupted run accumulated them so that first-
// occurrence DISTINCT semantics and row ordering stay deterministic.
//
// Decoding is defensive: the input may come from a disk record that was
// truncated or corrupted (the cursor layer's CRC catches random damage,
// but the decoder must also survive adversarial input — it is fuzzed).

// AppendRelation appends r's binary encoding to buf and returns the
// extended slice. A nil relation encodes as an empty one.
func AppendRelation(buf []byte, r *Relation) []byte {
	if r == nil {
		r = &Relation{}
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Vars)))
	for _, v := range r.Vars {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Rows)))
	for _, row := range r.Rows {
		for _, id := range row {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}
	return buf
}

// DecodeRelation decodes one relation from the front of data, returning
// it and the remaining bytes.
func DecodeRelation(data []byte) (*Relation, []byte, error) {
	nVars, data, err := decodeUvarint(data)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: relation vars: %w", err)
	}
	// Each var costs at least one length byte; bound before allocating.
	if nVars > uint64(len(data)) {
		return nil, nil, fmt.Errorf("engine: relation claims %d vars in %d bytes", nVars, len(data))
	}
	r := &Relation{Vars: make([]string, nVars)}
	for i := range r.Vars {
		var n uint64
		n, data, err = decodeUvarint(data)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: var length: %w", err)
		}
		if n > uint64(len(data)) {
			return nil, nil, fmt.Errorf("engine: var of %d bytes in %d remaining", n, len(data))
		}
		r.Vars[i] = string(data[:n])
		data = data[n:]
	}
	nRows, data, err := decodeUvarint(data)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: relation rows: %w", err)
	}
	// Each cell costs at least one byte.
	if nVars > 0 && nRows > uint64(len(data))/nVars {
		return nil, nil, fmt.Errorf("engine: relation claims %d×%d cells in %d bytes", nRows, nVars, len(data))
	}
	if nVars == 0 {
		// Width-0 rows (fully concrete patterns) carry no payload bytes,
		// so the row count alone must be bounded.
		if nRows > 1<<20 {
			return nil, nil, fmt.Errorf("engine: %d zero-width rows", nRows)
		}
		if nRows > 0 {
			r.Rows = make([][]rdf.ID, nRows)
		}
		return r, data, nil
	}
	if nRows > 0 {
		cells := make([]rdf.ID, nRows*nVars)
		r.Rows = make([][]rdf.ID, nRows)
		for i := range r.Rows {
			row := cells[uint64(i)*nVars : (uint64(i)+1)*nVars : (uint64(i)+1)*nVars]
			for j := range row {
				var v uint64
				v, data, err = decodeUvarint(data)
				if err != nil {
					return nil, nil, fmt.Errorf("engine: row %d: %w", i, err)
				}
				if v > uint64(^rdf.ID(0)) {
					return nil, nil, fmt.Errorf("engine: row %d: ID %d out of range", i, v)
				}
				row[j] = rdf.ID(v)
			}
			r.Rows[i] = row
		}
	}
	return r, data, nil
}

func decodeUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated varint")
	}
	return v, data[n:], nil
}
