package engine

import (
	"reflect"
	"testing"

	"ping/internal/rdf"
)

func TestGreedyJoinOrder(t *testing.T) {
	cases := []struct {
		name    string
		varSets [][]string
		cards   []int64
		want    []int
	}{
		{name: "empty", varSets: nil, cards: nil, want: nil},
		{name: "single", varSets: [][]string{{"x"}}, cards: []int64{5}, want: []int{0}},
		{
			// Starts at the smallest relation, then grows by shared vars.
			name:    "chain smallest first",
			varSets: [][]string{{"x", "y"}, {"y", "z"}, {"z", "w"}},
			cards:   []int64{100, 10, 50},
			want:    []int{1, 2, 0},
		},
		{
			// A tiny relation sharing no variable with the current result
			// loses to a bigger one that does (cross products are last
			// resorts).
			name:    "shared beats smaller",
			varSets: [][]string{{"x", "y"}, {"y", "z"}, {"a", "b"}},
			cards:   []int64{5, 1000, 1},
			want:    []int{2, 0, 1},
		},
		{
			// Ties on cardinality keep the earliest index, matching
			// popSmallest's strict-less comparison.
			name:    "tie keeps first index",
			varSets: [][]string{{"x"}, {"x"}, {"x"}},
			cards:   []int64{7, 7, 7},
			want:    []int{0, 1, 2},
		},
	}
	for _, tc := range cases {
		if got := GreedyJoinOrder(tc.varSets, tc.cards); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: GreedyJoinOrder = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestGreedyJoinOrderMatchesPopSmallest locks the predictor to the
// executor: the order popSmallest actually consumes relations must equal
// the predicted order for the same var sets and cardinalities.
func TestGreedyJoinOrderMatchesPopSmallest(t *testing.T) {
	varSets := [][]string{{"x", "y"}, {"y", "z"}, {"a", "b"}, {"z", "a"}, {"b", "c"}}
	cards := []int64{40, 10, 25, 25, 3}

	rels := make([]*Relation, len(varSets))
	origin := make(map[*Relation]int)
	for i, vs := range varSets {
		r := &Relation{Vars: vs, Rows: make([][]rdf.ID, cards[i])}
		for j := range r.Rows {
			r.Rows[j] = make([]rdf.ID, len(vs))
		}
		rels[i] = r
		origin[r] = i
	}

	// Replay joinAll's consumption loop without executing joins: the
	// accumulated result's schema is the union of consumed var sets.
	remaining := append([]*Relation(nil), rels...)
	var executed []int
	cur := popSmallest(&remaining, nil)
	executed = append(executed, origin[cur])
	acc := &Relation{Vars: append([]string(nil), cur.Vars...)}
	for len(remaining) > 0 {
		next := popSmallest(&remaining, acc)
		executed = append(executed, origin[next])
		for _, v := range next.Vars {
			if acc.varIndex(v) < 0 {
				acc.Vars = append(acc.Vars, v)
			}
		}
	}

	predicted := GreedyJoinOrder(varSets, cards)
	if !reflect.DeepEqual(predicted, executed) {
		t.Fatalf("predicted order %v, executor consumed %v", predicted, executed)
	}
}
