package engine

import (
	"fmt"

	"ping/internal/dataflow"
	"ping/internal/obs"
	"ping/internal/sparql"
)

// Incremental is a semi-naive progressive evaluator: instead of
// re-joining the full accumulated slice at every PQA step, it folds in
// only the newly loaded rows (the delta) and unions the result with the
// cached previous answers.
//
// Soundness rests on Lemma 4.3 (monotonicity): with per-pattern inputs
// A_i = O_i ∪ D_i (old rows ∪ this step's delta), the k-way join
// expands as
//
//	⋈_i A_i  =  ⋈_i O_i  ∪  ⋃_{j=1..k} (A_1 ⋈ … ⋈ A_{j-1} ⋈ D_j ⋈ O_{j+1} ⋈ … ⋈ O_k)
//
// The first term is the cached previous step; each delta term touches at
// least one new sub-partition and is skipped outright when D_j is empty.
// FILTER, projection, and DISTINCT all distribute over union, so the
// per-step answer *set* is identical to the from-scratch evaluation —
// only row order may differ. LIMIT does not distribute over union, so
// NewIncremental rejects limited queries and the caller falls back to
// from-scratch evaluation.
//
// Triple-pattern deltas are exact by construction: hierarchy levels are
// disjoint and sub-partitions are per-property, so newly loaded groups
// contribute exactly the new relation rows. Property-path patterns are
// recomputed over their accumulated groups when they receive a delta
// (new edges can close paths through old edges), and the delta relation
// is the set difference against the previous path relation — monotone by
// Lemma 4.3, hence a true delta.
type Incremental struct {
	q    *sparql.Query
	dict Dict
	opts Options
	ctx  *dataflow.Context

	nPat int
	// full/old hold the per-pattern relations (triple patterns first,
	// then paths): full is the accumulated relation including the current
	// step's deltas, old the relation before them.
	full []*Relation
	old  []*Relation

	// pathGroups accumulates every loaded group per path pattern;
	// pathSeen is the row set of the previous path relation, used to
	// extract the delta after a recompute.
	pathGroups [][]PropGroup
	pathSeen   []*rowSet

	answers   *Relation
	answerSet *rowSet
	proj      []string
}

// NewIncremental prepares a semi-naive evaluation of q. Queries with a
// LIMIT are rejected (the union rewrite cannot reproduce limit
// semantics); callers should evaluate those from scratch.
func NewIncremental(q *sparql.Query, dict Dict, opts Options) (*Incremental, error) {
	if q.Limit > 0 {
		return nil, fmt.Errorf("engine: incremental evaluation does not support LIMIT")
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = dataflow.NewContext(1)
	}
	k := len(q.Patterns) + len(q.Paths)
	inc := &Incremental{
		q:          q,
		dict:       dict,
		opts:       opts,
		ctx:        ctx,
		nPat:       len(q.Patterns),
		full:       make([]*Relation, k),
		old:        make([]*Relation, k),
		pathGroups: make([][]PropGroup, len(q.Paths)),
		pathSeen:   make([]*rowSet, len(q.Paths)),
		proj:       q.Projection(),
		answerSet:  newRowSet(0),
	}
	for i, pat := range q.Patterns {
		inc.full[i] = &Relation{Vars: pat.Vars()}
	}
	for j, pat := range q.Paths {
		inc.full[inc.nPat+j] = &Relation{Vars: pat.Vars()}
		inc.pathSeen[j] = newRowSet(0)
	}
	inc.answers = &Relation{Vars: inc.proj}
	return inc, nil
}

// Answers returns the cumulative distinct answer relation as a stable
// snapshot (appending further steps does not mutate it).
func (inc *Incremental) Answers() *Relation {
	return &Relation{Vars: inc.proj, Rows: inc.answers.Rows[:len(inc.answers.Rows):len(inc.answers.Rows)]}
}

// Snapshot returns stable copies of the evaluator's accumulated state at
// a step boundary: the per-pattern relations (triple patterns first,
// then paths, in NewIncremental's layout) and the cumulative distinct
// answers. The copies share row storage with the evaluator through
// capped slices, so taking a snapshot per step is cheap and later steps
// cannot mutate it.
func (inc *Incremental) Snapshot() (rels []*Relation, answers *Relation) {
	rels = make([]*Relation, len(inc.full))
	for i, r := range inc.full {
		rels[i] = &Relation{Vars: r.Vars, Rows: r.Rows[:len(r.Rows):len(r.Rows)]}
	}
	return rels, inc.Answers()
}

// Restore primes a freshly constructed evaluator with a Snapshot taken
// at a step boundary, plus the accumulated groups of every path pattern
// (a path recomputes over all of its groups when a delta arrives, so the
// groups — not just the materialized relation — must survive
// hibernation). Subsequent Steps behave exactly as if this evaluator had
// processed the original steps itself: the per-pattern full relations,
// path seen-sets, and answer set all continue from the restored state,
// so the delta expansion of the package comment still enumerates every
// new join result and the answer *set* matches an uninterrupted run.
func (inc *Incremental) Restore(rels []*Relation, pathGroups [][]PropGroup, answers *Relation) error {
	if len(rels) != len(inc.full) {
		return fmt.Errorf("engine: restore with %d relations, want %d", len(rels), len(inc.full))
	}
	if len(pathGroups) != len(inc.pathGroups) {
		return fmt.Errorf("engine: restore with %d path group lists, want %d", len(pathGroups), len(inc.pathGroups))
	}
	for i, r := range rels {
		if r == nil {
			return fmt.Errorf("engine: restore relation %d is nil", i)
		}
		if !sameVars(r.Vars, inc.full[i].Vars) {
			return fmt.Errorf("engine: restore relation %d has vars %v, want %v", i, r.Vars, inc.full[i].Vars)
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Vars) {
				return fmt.Errorf("engine: restore relation %d has a row of width %d, want %d", i, len(row), len(r.Vars))
			}
		}
		inc.full[i] = &Relation{Vars: inc.full[i].Vars, Rows: r.Rows[:len(r.Rows):len(r.Rows)]}
	}
	for j := range inc.pathGroups {
		inc.pathGroups[j] = append([]PropGroup(nil), pathGroups[j]...)
		seen := newRowSet(len(rels[inc.nPat+j].Rows))
		for _, row := range rels[inc.nPat+j].Rows {
			seen.add(row)
		}
		inc.pathSeen[j] = seen
	}
	if answers == nil {
		answers = &Relation{Vars: inc.proj}
	}
	for _, row := range answers.Rows {
		if len(row) != len(inc.proj) {
			return fmt.Errorf("engine: restore answer row of width %d, want %d", len(row), len(inc.proj))
		}
	}
	inc.answers = &Relation{Vars: inc.proj, Rows: answers.Rows[:len(answers.Rows):len(answers.Rows)]}
	set := newRowSet(len(answers.Rows))
	for _, row := range answers.Rows {
		set.add(row)
	}
	inc.answerSet = set
	return nil
}

func sameVars(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Step folds one batch of newly loaded groups into the evaluation.
// patDeltas aligns with q.Patterns and pathDeltas with q.Paths; an empty
// group list means the pattern saw no new data this step. It returns the
// cumulative answer snapshot plus the stats of the work done by this
// step. span, when non-nil, receives the per-join child spans.
func (inc *Incremental) Step(patDeltas, pathDeltas [][]PropGroup, span *obs.Span) (*Relation, *Stats, error) {
	if len(patDeltas) != len(inc.q.Patterns) || len(pathDeltas) != len(inc.q.Paths) {
		return nil, nil, fmt.Errorf("engine: %d/%d deltas for %d patterns + %d paths",
			len(patDeltas), len(pathDeltas), len(inc.q.Patterns), len(inc.q.Paths))
	}
	stats := &Stats{}
	k := len(inc.full)
	deltas := make([]*Relation, k)

	// Snapshot the pre-step relations, then extend them with the deltas.
	for i := range inc.full {
		rows := inc.full[i].Rows
		inc.old[i] = &Relation{Vars: inc.full[i].Vars, Rows: rows[:len(rows):len(rows)]}
	}
	for i, groups := range patDeltas {
		if len(groups) == 0 {
			continue
		}
		d, err := BuildRelation(PatternInput{Pattern: inc.q.Patterns[i], Groups: groups}, inc.dict)
		if err != nil {
			return nil, nil, err
		}
		deltas[i] = d
		if d.Card() > 0 {
			// Appending in place is safe: old[i] snapshots the previous
			// rows with a capped slice, so growth cannot alias it.
			inc.full[i].Rows = append(inc.full[i].Rows, d.Rows...)
		}
	}
	for j, groups := range pathDeltas {
		if len(groups) == 0 {
			continue
		}
		inc.pathGroups[j] = append(inc.pathGroups[j], groups...)
		rel, err := BuildPathRelation(PathInput{Pattern: inc.q.Paths[j], Groups: inc.pathGroups[j]}, inc.dict)
		if err != nil {
			return nil, nil, err
		}
		// The recomputed relation is a superset of the previous one
		// (monotonicity); its fresh rows are the delta.
		d := &Relation{Vars: rel.Vars}
		for _, row := range rel.Rows {
			if inc.pathSeen[j].add(row) {
				d.Rows = append(d.Rows, row)
			}
		}
		if d.Card() > 0 {
			deltas[inc.nPat+j] = d
			inc.full[inc.nPat+j] = rel
		}
	}

	// One term per pattern with a non-empty delta: patterns before it see
	// the extended relations, the delta pattern only its new rows, and
	// patterns after it the pre-step relations.
	for j := 0; j < k; j++ {
		if deltas[j] == nil || deltas[j].Card() == 0 {
			continue
		}
		rels := make([]*Relation, 0, k)
		empty := false
		for i := 0; i < k; i++ {
			var r *Relation
			switch {
			case i < j:
				r = inc.full[i]
			case i == j:
				r = deltas[j]
			default:
				r = inc.old[i]
			}
			if r.Card() == 0 {
				empty = true
				break
			}
			rels = append(rels, r)
		}
		if empty {
			continue
		}
		termOpts := inc.opts
		termOpts.Span = span
		joined, err := joinAll(inc.ctx, rels, termOpts, stats)
		if err != nil {
			return nil, nil, err
		}
		res := applyFilters(joined, inc.q.Filters, inc.dict)
		if len(inc.proj) > 0 {
			if res, err = res.Project(inc.proj); err != nil {
				return nil, nil, err
			}
		}
		for _, row := range res.Rows {
			if inc.answerSet.add(row) {
				inc.answers.Rows = append(inc.answers.Rows, row)
			}
		}
	}
	stats.OutputRows = int64(inc.answers.Card())
	return inc.Answers(), stats, nil
}
