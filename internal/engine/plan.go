package engine

// GreedyJoinOrder predicts the order in which joinAll will consume a set
// of relations, given only their variable sets and (estimated) input
// cardinalities — the planning-time view EXPLAIN needs without
// materializing anything. It replicates popSmallest exactly: start from
// the smallest relation, then repeatedly take the smallest relation
// sharing a variable with the accumulated result, falling back to an
// unconnected relation (a cross product) only when none shares. Ties on
// cardinality keep the earliest index, like popSmallest's strict <.
func GreedyJoinOrder(varSets [][]string, cards []int64) []int {
	n := len(varSets)
	if n == 0 {
		return nil
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	curVars := make(map[string]bool)
	haveCur := false

	pick := func() int {
		best, bestShared := -1, false
		for pos, idx := range remaining {
			shared := false
			if haveCur {
				for _, v := range varSets[idx] {
					if curVars[v] {
						shared = true
						break
					}
				}
			}
			switch {
			case best < 0:
				best, bestShared = pos, shared
			case shared && !bestShared:
				best, bestShared = pos, shared
			case shared == bestShared && cards[idx] < cards[remaining[best]]:
				best = pos
			}
		}
		idx := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		return idx
	}

	order := make([]int, 0, n)
	for len(remaining) > 0 {
		idx := pick()
		order = append(order, idx)
		for _, v := range varSets[idx] {
			curVars[v] = true
		}
		haveCur = true
	}
	return order
}
