package cursor

import (
	"errors"
	"testing"
	"time"

	"ping/internal/dfs"
	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/ping"
	"ping/internal/rdf"
)

func sampleCheckpoint() *ping.Checkpoint {
	return &ping.Checkpoint{
		Query:         `SELECT * WHERE { ?x <p0> ?y . ?x <p1> ?z }`,
		Strategy:      ping.LargestFirst,
		FailurePolicy: ping.Degrade,
		Epoch:         3,
		LayoutSig:     0xdeadbeefcafe,
		DictLen:       512,
		DictSig:       0xfeedface12345678,
		StepsDone:     2,
		LoadedKeys:    []hpart.SubPartKey{{Level: 1, Prop: 0}, {Level: 2, Prop: 1}},
		MissingKeys:   []hpart.SubPartKey{{Level: 3, Prop: 7}},
		RowsLoadedCum: 12345,
		ElapsedCum:    87 * time.Millisecond,
		PrevAnswers:   42,
		Incremental:   true,
		PatternRels: []*engine.Relation{
			{Vars: []string{"x", "y"}, Rows: [][]rdf.ID{{1, 2}, {3, 4}}},
			{Vars: []string{"x", "z"}, Rows: [][]rdf.ID{{1, 9}}},
		},
		Answers: &engine.Relation{Vars: []string{"x", "y", "z"}, Rows: [][]rdf.ID{{1, 2, 9}}},
	}
}

func sampleRecord() *Record {
	return &Record{
		ID:          [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Fingerprint: "bgp-2/star",
		Created:     1111,
		LastUsed:    2222,
		Segments:    3,
		LatencyNS:   int64(time.Second),
		Restarted:   true,
		StepAnswers: []int{0, 4, 42},
		Checkpoint:  *sampleCheckpoint(),
	}
}

// createTest registers a fresh lineage paused at the sample checkpoint.
func createTest(t *testing.T, m *Manager, latency time.Duration) *Handle {
	t.Helper()
	id, err := NewID()
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Create(&Record{
		ID:          id,
		Fingerprint: "fp",
		LatencyNS:   int64(latency),
		Checkpoint:  *sampleCheckpoint(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleRecord()
	got, err := DecodeRecord(EncodeRecord(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Fingerprint != want.Fingerprint ||
		got.Created != want.Created || got.LastUsed != want.LastUsed ||
		got.Segments != want.Segments || got.LatencyNS != want.LatencyNS ||
		got.Restarted != want.Restarted {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", got, want)
	}
	if len(got.StepAnswers) != 3 || got.StepAnswers[2] != 42 {
		t.Fatalf("step answers %v, want %v", got.StepAnswers, want.StepAnswers)
	}
	gcp, wcp := got.Checkpoint, want.Checkpoint
	if gcp.Query != wcp.Query || gcp.Strategy != wcp.Strategy ||
		gcp.FailurePolicy != wcp.FailurePolicy || gcp.Epoch != wcp.Epoch ||
		gcp.LayoutSig != wcp.LayoutSig || gcp.StepsDone != wcp.StepsDone ||
		gcp.RowsLoadedCum != wcp.RowsLoadedCum || gcp.ElapsedCum != wcp.ElapsedCum ||
		gcp.PrevAnswers != wcp.PrevAnswers || gcp.Incremental != wcp.Incremental {
		t.Fatalf("checkpoint mismatch:\n got %+v\nwant %+v", gcp, wcp)
	}
	if len(gcp.LoadedKeys) != len(wcp.LoadedKeys) || gcp.LoadedKeys[1] != wcp.LoadedKeys[1] {
		t.Fatalf("loaded keys %v, want %v", gcp.LoadedKeys, wcp.LoadedKeys)
	}
	if len(gcp.MissingKeys) != 1 || gcp.MissingKeys[0] != wcp.MissingKeys[0] {
		t.Fatalf("missing keys %v, want %v", gcp.MissingKeys, wcp.MissingKeys)
	}
	if len(gcp.PatternRels) != 2 || gcp.PatternRels[0].Card() != 2 || gcp.PatternRels[1].Rows[0][1] != 9 {
		t.Fatalf("pattern relations did not round-trip: %+v", gcp.PatternRels)
	}
	if gcp.Answers == nil || gcp.Answers.Card() != 1 || gcp.Answers.Rows[0][2] != 9 {
		t.Fatalf("answers did not round-trip: %+v", gcp.Answers)
	}
}

func TestRecordRejectsCorruption(t *testing.T) {
	good := EncodeRecord(sampleRecord())
	// Every single-byte flip must be rejected (magic, version, length,
	// or checksum catches it).
	for i := 0; i < len(good); i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x41
		if _, err := DecodeRecord(bad); err == nil {
			t.Fatalf("byte flip at %d accepted", i)
		}
	}
	// Truncations too.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeRecord(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestTokenRoundTrip(t *testing.T) {
	id := [16]byte{0xaa, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 0xff}
	for _, step := range []int{1, 2, 127, 128, 65535, maxTokenStep} {
		tok := Token(id, step)
		gid, gstep, err := ParseToken(tok)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if gid != id || gstep != step {
			t.Fatalf("step %d: got (%x, %d)", step, gid, gstep)
		}
	}
}

func TestTokenRejectsGarbage(t *testing.T) {
	good := Token([16]byte{1}, 3)
	bad := []string{
		"", "pqc", "pqc.", "qpc." + good[4:], good + "x", good[:len(good)-1],
		"pqc.!!!not-base64!!!", Token([16]byte{1}, 0),
	}
	for _, tok := range bad {
		if _, _, err := ParseToken(tok); err == nil {
			t.Fatalf("accepted %q", tok)
		}
	}
	// Flip every character of the payload: the CRC must catch it (or
	// base64 rejects the alphabet change).
	for i := len(tokenPrefix); i < len(good); i++ {
		b := []byte(good)
		if b[i] == 'A' {
			b[i] = 'B'
		} else {
			b[i] = 'A'
		}
		if _, _, err := ParseToken(string(b)); err == nil {
			t.Fatalf("accepted corrupted token (pos %d)", i)
		}
	}
}

// managerAt builds a Manager over fs with a controllable clock.
func managerAt(fs *dfs.FS, now *time.Time) *Manager {
	return New(Config{
		FS:        fs,
		TTL:       10 * time.Minute,
		IdleEvict: time.Minute,
		Now:       func() time.Time { return *now },
	})
}

func TestManagerLifecycle(t *testing.T) {
	obs.VerifyNoLeaks(t)
	now := time.Unix(1000, 0)
	fs := dfs.New(dfs.Config{})
	m := managerAt(fs, &now)

	h := createTest(t, m, 50*time.Millisecond)
	tok := h.Token(2)

	// Exclusive checkout.
	h2, err := m.Checkout(tok)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkout(tok); !errors.Is(err, ErrBusy) {
		t.Fatalf("double checkout: %v", err)
	}
	// A token for an earlier step of the same lineage still resumes.
	h2.Abort()
	h2, err = m.Checkout(h.Token(1))
	if err != nil {
		t.Fatalf("earlier-step token: %v", err)
	}
	// A forged future-step token does not.
	h2.Abort()
	if _, err := m.Checkout(h.Token(5)); !errors.Is(err, ErrBadToken) {
		t.Fatalf("future-step token: %v", err)
	}

	// Pause accumulates segments and latency; Complete retires and
	// reports the lineage totals exactly once.
	h2, _ = m.Checkout(tok)
	cp2 := sampleCheckpoint()
	cp2.StepsDone = 3
	h2.Pause(cp2, 30*time.Millisecond, false, nil)
	h3, err := m.Checkout(h2.Token(3))
	if err != nil {
		t.Fatal(err)
	}
	rec := h3.Complete(20 * time.Millisecond)
	if rec.Segments != 3 || rec.LatencyNS != int64(100*time.Millisecond) {
		t.Fatalf("lineage totals %d segments / %v", rec.Segments, time.Duration(rec.LatencyNS))
	}
	if _, err := m.Checkout(tok); !errors.Is(err, ErrNotFound) {
		t.Fatalf("completed cursor still resumable: %v", err)
	}
	if st := m.Stats(); st.Active != 0 {
		t.Fatalf("stats after complete: %+v", st)
	}
}

func TestManagerHibernateAndRestart(t *testing.T) {
	// Hibernation crosses managers and a simulated restart — exactly the
	// kind of path that can strand a goroutine, so verify none leak.
	obs.VerifyNoLeaks(t)
	now := time.Unix(1000, 0)
	fs := dfs.New(dfs.Config{})
	m := managerAt(fs, &now)
	h := createTest(t, m, time.Millisecond)
	tok := h.Token(2)

	// Idle past IdleEvict: the sweep hibernates the record to the dfs.
	now = now.Add(2 * time.Minute)
	hib, exp := m.Sweep()
	if hib != 1 || exp != 0 {
		t.Fatalf("sweep: hibernated %d, expired %d", hib, exp)
	}
	if st := m.Stats(); st.Hibernated != 1 || st.InMemory != 0 {
		t.Fatalf("stats after sweep: %+v", st)
	}
	// Checkout reloads it transparently.
	h2, err := m.Checkout(tok)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Checkpoint().StepsDone != 2 {
		t.Fatalf("rehydrated checkpoint: %+v", h2.Checkpoint())
	}
	h2.Abort()

	// Full process restart: a fresh manager over the same dfs finds the
	// record by token alone.
	if _, err := m.HibernateAll(); err != nil {
		t.Fatal(err)
	}
	m2 := managerAt(fs, &now)
	h3, err := m2.Checkout(tok)
	if err != nil {
		t.Fatalf("post-restart checkout: %v", err)
	}
	if h3.Checkpoint().Query != sampleCheckpoint().Query {
		t.Fatal("post-restart checkpoint lost the query")
	}
	if h3.Lease() != nil {
		t.Fatal("leases must not survive a restart")
	}
}

func TestManagerTTLExpiry(t *testing.T) {
	obs.VerifyNoLeaks(t)
	now := time.Unix(1000, 0)
	fs := dfs.New(dfs.Config{})
	m := managerAt(fs, &now)
	h := createTest(t, m, time.Millisecond)
	tok := h.Token(2)
	now = now.Add(11 * time.Minute)
	if _, exp := m.Sweep(); exp != 1 {
		t.Fatalf("expired %d cursors, want 1", exp)
	}
	if _, err := m.Checkout(tok); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired cursor resumable: %v", err)
	}

	// TTL is also enforced on a hibernated record found after restart.
	h = createTest(t, m, time.Millisecond)
	tok = h.Token(2)
	if _, err := m.HibernateAll(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(11 * time.Minute)
	m2 := managerAt(fs, &now)
	if _, err := m2.Checkout(tok); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale hibernated cursor resumable: %v", err)
	}
}

func TestManagerOverflow(t *testing.T) {
	now := time.Unix(1000, 0)
	// No FS: the table rejects overflow.
	m := New(Config{MaxCursors: 2, Now: func() time.Time { return now }})
	createTest(t, m, 0)
	createTest(t, m, 0)
	id, _ := NewID()
	_, err := m.Create(&Record{ID: id, Checkpoint: *sampleCheckpoint()}, nil)
	if !errors.Is(err, ErrTooMany) {
		t.Fatalf("overflow: %v", err)
	}

	// With an FS, overflow hibernates the LRU cursor instead.
	fs := dfs.New(dfs.Config{})
	m = New(Config{FS: fs, MaxCursors: 2, Now: func() time.Time { return now }})
	h0 := createTest(t, m, 0)
	now = now.Add(time.Second)
	createTest(t, m, 0)
	now = now.Add(time.Second)
	createTest(t, m, 0)
	if st := m.Stats(); st.Hibernated != 1 || st.Active != 3 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	// The evicted cursor is still resumable from disk.
	if _, err := m.Checkout(h0.Token(2)); err != nil {
		t.Fatalf("evicted cursor: %v", err)
	}
}
