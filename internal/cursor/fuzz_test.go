package cursor

import (
	"bytes"
	"testing"
)

// FuzzParseToken hammers the client-token decoder: it must never panic,
// and anything it accepts must re-encode to a token that parses to the
// same (id, step).
func FuzzParseToken(f *testing.F) {
	f.Add(Token([16]byte{1, 2, 3}, 1))
	f.Add(Token([16]byte{0xff, 0xee}, 65535))
	f.Add(Token([16]byte{}, maxTokenStep))
	f.Add("pqc.")
	f.Add("pqc.AAAAAAAAAAAAAAAAAAAAAAAAAAAA")
	f.Add("not-a-token")
	f.Fuzz(func(t *testing.T, tok string) {
		id, step, err := ParseToken(tok)
		if err != nil {
			return
		}
		if step < 1 || step > maxTokenStep {
			t.Fatalf("accepted out-of-range step %d", step)
		}
		rid, rstep, err := ParseToken(Token(id, step))
		if err != nil || rid != id || rstep != step {
			t.Fatalf("re-encode of accepted token diverges: %v", err)
		}
	})
}

// FuzzDecodeRecord hammers the durable-record decoder with raw bytes:
// no panic, no unbounded allocation, and accepted records round-trip.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(EncodeRecord(sampleRecord()))
	f.Add(EncodeRecord(&Record{}))
	small := sampleRecord()
	small.Checkpoint.PatternRels = nil
	small.Checkpoint.Answers = nil
	f.Add(EncodeRecord(small))
	f.Add([]byte("PQC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		// Accepted input must be byte-identical to the canonical
		// encoding (the format has no redundancy to hide mutations in).
		if !bytes.Equal(EncodeRecord(rec), data) {
			t.Fatal("accepted record does not re-encode canonically")
		}
	})
}
