package cursor

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"ping/internal/dfs"
	"ping/internal/hpart"
	"ping/internal/obs"
	"ping/internal/ping"
)

var (
	// ErrNotFound: no cursor with that ID exists (expired, completed, or
	// never created).
	ErrNotFound = errors.New("cursor: not found")
	// ErrBusy: the cursor is being resumed by another request right now.
	// Cursors are single-writer: two concurrent resumes of one lineage
	// would double-run steps and double-count workload latency.
	ErrBusy = errors.New("cursor: resume already in flight")
	// ErrTooMany: the in-memory cursor table is full and no disk layer
	// is configured to overflow into.
	ErrTooMany = errors.New("cursor: too many open cursors")
)

// Config parameterizes a Manager. The zero value of every field has a
// usable default except FS/Store, which are optional capabilities.
type Config struct {
	// FS, when non-nil, is the durable layer: idle cursors hibernate to
	// <Dir>/<id>.cur and survive a process restart. Nil keeps cursors
	// memory-only.
	FS *dfs.FS
	// Dir is the FS directory for hibernated records (default "cursors").
	Dir string
	// TTL bounds a lineage's total idle lifetime and its epoch lease
	// (default 15m). After TTL with no resume the cursor is dropped and
	// its lease released — an abandoned cursor can never block GC.
	TTL time.Duration
	// IdleEvict is the in-memory idle time before a cursor hibernates
	// to FS (default 1m; ignored without FS).
	IdleEvict time.Duration
	// MaxCursors caps the in-memory table (default 1024). Overflow
	// hibernates the least-recently-used idle cursor, or fails Create
	// with ErrTooMany when there is no FS.
	MaxCursors int
	// Store, when non-nil, issues TTL epoch leases so paused runs keep
	// their snapshot alive across segments.
	Store *hpart.Store
	// Metrics receives the cursor_* series (default obs.Default).
	Metrics *obs.Registry
	// Now overrides the clock (tests).
	Now func() time.Time
	// Persist, when non-nil, runs after hibernation writes (e.g.
	// dfs.FS.SaveManifest, so records are findable after restart).
	Persist func() error
}

// Manager owns the cursor table: creation, token checkout, idle
// eviction to disk, TTL expiry, and shutdown hibernation.
type Manager struct {
	cfg Config
	met *metrics

	mu      sync.Mutex
	cursors map[[16]byte]*entry
}

// entry is one lineage. rec is nil while the record lives only on disk
// (the lease, if any, stays in memory — leases are process-local).
type entry struct {
	rec    *Record
	lease  *hpart.Lease
	busy   bool
	onDisk bool
}

type metrics struct {
	created    *obs.Counter
	resumed    *obs.Counter
	restarted  *obs.Counter
	expired    *obs.Counter
	hibernated *obs.Counter
	completed  *obs.Counter
	active     *obs.Gauge
}

// New builds a Manager from cfg, applying defaults.
func New(cfg Config) *Manager {
	if cfg.Dir == "" {
		cfg.Dir = "cursors"
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 15 * time.Minute
	}
	if cfg.IdleEvict <= 0 {
		cfg.IdleEvict = time.Minute
	}
	if cfg.MaxCursors <= 0 {
		cfg.MaxCursors = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	reg.Describe("cursor_created_total", "query cursors created by a budget or disconnect pause")
	reg.Describe("cursor_resumed_total", "cursor checkouts that continued a paused lineage")
	reg.Describe("cursor_restarted_total", "resumes whose snapshot was gone; the lineage restarted from scratch")
	reg.Describe("cursor_expired_total", "cursors dropped after their TTL with no resume")
	reg.Describe("cursor_hibernated_total", "cursor records written to the dfs layer")
	reg.Describe("cursor_completed_total", "lineages that reached their final step and were retired")
	reg.Describe("cursors_active", "live cursors (in memory or hibernated with a live lease)")
	return &Manager{
		cfg: cfg,
		met: &metrics{
			created:    reg.Counter("cursor_created_total", nil),
			resumed:    reg.Counter("cursor_resumed_total", nil),
			restarted:  reg.Counter("cursor_restarted_total", nil),
			expired:    reg.Counter("cursor_expired_total", nil),
			hibernated: reg.Counter("cursor_hibernated_total", nil),
			completed:  reg.Counter("cursor_completed_total", nil),
			active:     reg.Gauge("cursors_active", nil),
		},
		cursors: make(map[[16]byte]*entry),
	}
}

// TTL returns the configured lineage (and epoch lease) lifetime.
func (m *Manager) TTL() time.Duration { return m.cfg.TTL }

// Lease pins the store's current snapshot under a cursor-TTL lease, or
// returns (nil, nil) when no store is configured (plain layouts never
// change, so resumes validate by signature alone).
func (m *Manager) Lease() (*hpart.Lease, *hpart.Layout) {
	if m.cfg.Store == nil {
		return nil, nil
	}
	return m.cfg.Store.PinLease(m.cfg.TTL)
}

// Handle is a checked-out cursor: exclusive access to one lineage
// between Checkout/Create and Pause/Complete/Abort.
type Handle struct {
	m   *Manager
	id  [16]byte
	rec *Record
}

// NewID draws a random 128-bit cursor ID. Handlers allocate the ID
// before the run starts, so the tokens stamped on step lines already
// name the cursor a later pause will create.
func NewID() ([16]byte, error) {
	var id [16]byte
	if _, err := rand.Read(id[:]); err != nil {
		return id, fmt.Errorf("cursor: id: %w", err)
	}
	return id, nil
}

// Create registers a new paused lineage. rec must carry the ID, the
// checkpoint, and the first segment's bookkeeping; the manager stamps
// the timestamps and takes ownership of lease (which may be nil). The
// returned handle is NOT busy — the run is over and the cursor is
// immediately resumable.
func (m *Manager) Create(rec *Record, lease *hpart.Lease) (*Handle, error) {
	if rec == nil || rec.Checkpoint.StepsDone < 1 {
		lease.Release()
		return nil, fmt.Errorf("cursor: record has no completed steps")
	}
	now := m.cfg.Now().UnixNano()
	rec.Created, rec.LastUsed = now, now
	if rec.Segments == 0 {
		rec.Segments = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.makeRoomLocked(); err != nil {
		lease.Release()
		return nil, err
	}
	m.cursors[rec.ID] = &entry{rec: rec, lease: lease}
	m.met.created.Inc()
	if rec.Restarted {
		m.met.restarted.Inc()
	}
	m.met.active.Set(float64(len(m.cursors)))
	return &Handle{m: m, id: rec.ID, rec: rec}, nil
}

// makeRoomLocked hibernates the least-recently-used idle cursor when
// the table is full, or reports ErrTooMany when it cannot.
func (m *Manager) makeRoomLocked() error {
	inMem := 0
	var lruID [16]byte
	var lru *entry
	for id, e := range m.cursors {
		if e.rec == nil {
			continue // already on disk: no memory pressure
		}
		inMem++
		if !e.busy && (lru == nil || e.rec.LastUsed < lru.rec.LastUsed) {
			lruID, lru = id, e
		}
	}
	if inMem < m.cfg.MaxCursors {
		return nil
	}
	if m.cfg.FS == nil || lru == nil {
		return ErrTooMany
	}
	if err := m.hibernateLocked(lruID, lru); err != nil {
		return err
	}
	return m.persistLocked()
}

// Checkout takes exclusive hold of the cursor a token names, reloading
// it from disk if it is hibernated (including after a process restart,
// when the in-memory table starts empty).
func (m *Manager) Checkout(token string) (*Handle, error) {
	id, step, err := ParseToken(token)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.cursors[id]
	if e == nil || e.rec == nil {
		rec, err := m.loadRecord(id)
		if err != nil {
			return nil, err
		}
		if e == nil {
			e = &entry{onDisk: true}
			m.cursors[id] = e
			m.met.active.Set(float64(len(m.cursors)))
		}
		e.rec = rec
	}
	if m.cfg.Now().UnixNano()-e.rec.LastUsed > int64(m.cfg.TTL) {
		m.dropLocked(id, e)
		m.met.expired.Inc()
		return nil, ErrNotFound
	}
	if e.busy {
		return nil, ErrBusy
	}
	// A token from any step up to the checkpoint resumes from the
	// checkpoint (answers are cumulative, so a client that saw step k
	// loses nothing by resuming at k' > k). A token claiming a FUTURE
	// step cannot have come from this lineage.
	if step > e.rec.Checkpoint.StepsDone {
		return nil, fmt.Errorf("%w: token step %d beyond checkpoint step %d",
			ErrBadToken, step, e.rec.Checkpoint.StepsDone)
	}
	e.busy = true
	e.rec.LastUsed = m.cfg.Now().UnixNano()
	m.met.resumed.Inc()
	return &Handle{m: m, id: id, rec: e.rec}, nil
}

// loadRecord reads and validates a hibernated record. Callers hold m.mu.
func (m *Manager) loadRecord(id [16]byte) (*Record, error) {
	if m.cfg.FS == nil || !m.cfg.FS.Exists(m.path(id)) {
		return nil, ErrNotFound
	}
	data, err := m.cfg.FS.ReadFile(m.path(id))
	if err != nil {
		return nil, fmt.Errorf("cursor: read hibernated record: %w", err)
	}
	rec, err := DecodeRecord(data)
	if err != nil {
		return nil, err
	}
	if rec.ID != id {
		return nil, fmt.Errorf("%w: record/path id mismatch", ErrBadRecord)
	}
	return rec, nil
}

// Checkpoint returns the resumable state. Valid only while checked out
// or immediately after Create.
func (h *Handle) Checkpoint() *ping.Checkpoint { return &h.rec.Checkpoint }

// Record returns the lineage bookkeeping (segments, latency, restart
// flag, fingerprint).
func (h *Handle) Record() *Record { return h.rec }

// Token returns the client token for the lineage's step s.
func (h *Handle) Token(step int) string { return Token(h.id, step) }

// Lease returns the lineage's epoch lease (nil if none, or after a
// restart — leases are process-local).
func (h *Handle) Lease() *hpart.Lease {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if e := h.m.cursors[h.id]; e != nil {
		return e.lease
	}
	return nil
}

// Pause parks the lineage again after a resumed segment: the new
// checkpoint replaces the old, the segment's latency is added, and the
// cursor becomes resumable. restarted and lease describe a lineage that
// lost its snapshot mid-resume and restarted on a freshly leased one
// (the old lease, if any, is released).
func (h *Handle) Pause(cp *ping.Checkpoint, latency time.Duration, restarted bool, lease *hpart.Lease) {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.cursors[h.id]
	if e == nil {
		lease.Release()
		return
	}
	h.rec.Checkpoint = *cp
	h.rec.Segments++
	h.rec.LatencyNS += int64(latency)
	h.rec.LastUsed = m.cfg.Now().UnixNano()
	if restarted {
		h.rec.Restarted = true
		m.met.restarted.Inc()
	}
	if restarted || lease != nil {
		e.lease.Release()
		e.lease = lease
	}
	e.rec = h.rec
	e.busy = false
	e.onDisk = false // the disk copy, if any, is stale now
}

// Complete retires the lineage after its final step: the cursor and any
// disk record are removed, the lease released, and the finished Record
// (with the final segment's latency folded in) returned for a single
// workload observation.
func (h *Handle) Complete(latency time.Duration) *Record {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	h.rec.Segments++
	h.rec.LatencyNS += int64(latency)
	if e := m.cursors[h.id]; e != nil {
		m.dropLocked(h.id, e)
		m.met.completed.Inc()
	}
	return h.rec
}

// Abort releases the busy hold without changing the lineage (the resume
// attempt failed before completing any step).
func (h *Handle) Abort() {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.cursors[h.id]; e != nil {
		e.busy = false
	}
}

// Sweep hibernates idle cursors and expires dead ones; pingd calls it
// periodically. It returns (hibernated, expired).
func (m *Manager) Sweep() (hibernated, expired int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now().UnixNano()
	wrote := false
	for id, e := range m.cursors {
		if e.busy {
			continue
		}
		var lastUsed int64
		if e.rec != nil {
			lastUsed = e.rec.LastUsed
		} else if e.lease != nil && !e.lease.Valid() {
			// On-disk record whose lease already expired: the snapshot is
			// gone, but the record stays resumable (restart path) until
			// its own TTL — which we cannot check without reading it.
			// Leave it; Checkout enforces the TTL on load.
			continue
		} else {
			continue
		}
		if now-lastUsed > int64(m.cfg.TTL) {
			m.dropLocked(id, e)
			m.met.expired.Inc()
			expired++
			continue
		}
		if m.cfg.FS != nil && !e.onDisk && now-lastUsed > int64(m.cfg.IdleEvict) {
			if err := m.hibernateLocked(id, e); err == nil {
				hibernated++
				wrote = true
			}
		}
	}
	if wrote {
		m.persistLocked() //nolint:errcheck // best-effort; records rewritten next sweep
	}
	return hibernated, expired
}

// HibernateAll writes every idle cursor to disk — the shutdown path, so
// lineages survive the restart. Busy cursors (still draining) are
// skipped; the server drains before calling this.
func (m *Manager) HibernateAll() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.FS == nil {
		return 0, nil
	}
	n := 0
	var firstErr error
	for id, e := range m.cursors {
		if e.busy || e.rec == nil || e.onDisk {
			continue
		}
		if err := m.hibernateLocked(id, e); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n++
	}
	if err := m.persistLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	return n, firstErr
}

// hibernateLocked writes one record to the dfs layer and frees its
// in-memory copy.
func (m *Manager) hibernateLocked(id [16]byte, e *entry) error {
	if err := m.cfg.FS.WriteFile(m.path(id), EncodeRecord(e.rec)); err != nil {
		return fmt.Errorf("cursor: hibernate: %w", err)
	}
	e.rec = nil
	e.onDisk = true
	m.met.hibernated.Inc()
	return nil
}

func (m *Manager) persistLocked() error {
	if m.cfg.Persist == nil {
		return nil
	}
	return m.cfg.Persist()
}

// dropLocked removes a cursor entirely: memory, lease, disk record.
func (m *Manager) dropLocked(id [16]byte, e *entry) {
	e.lease.Release()
	delete(m.cursors, id)
	if m.cfg.FS != nil && m.cfg.FS.Exists(m.path(id)) {
		m.cfg.FS.Remove(m.path(id)) //nolint:errcheck // orphan files are harmless
	}
	m.met.active.Set(float64(len(m.cursors)))
}

func (m *Manager) path(id [16]byte) string {
	return m.cfg.Dir + "/" + hex.EncodeToString(id[:]) + ".cur"
}

// Stats describes the cursor table for /stats.
type Stats struct {
	Active     int `json:"active"`
	InMemory   int `json:"in_memory"`
	Hibernated int `json:"hibernated"`
	Busy       int `json:"busy"`
}

// Stats snapshots the cursor table.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Active: len(m.cursors)}
	for _, e := range m.cursors {
		if e.rec != nil {
			st.InMemory++
		} else {
			st.Hibernated++
		}
		if e.busy {
			st.Busy++
		}
	}
	return st
}
