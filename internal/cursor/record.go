// Package cursor makes progressive queries durable: a paused PQA
// (budget exhausted, client disconnected, server draining) is frozen as
// a Record — the ping.Checkpoint plus lineage bookkeeping — addressed
// by an opaque client token. Records hibernate through the dfs layer,
// so a cursor survives a full server restart; the epoch pin it holds is
// a TTL lease (hpart.PinLease), so a cursor a client never comes back
// for can never block storage GC.
//
// The on-disk / on-wire record format is versioned and checksummed:
//
//	"PQC1" | version u8 | payload len u32 LE | payload | CRC32-IEEE(payload) u32 LE
//
// The payload is a varint-packed field sequence (see appendRecord). The
// decoder is defensive — every count is bounds-checked against the
// remaining input before allocation — because records come back from
// disk and tokens from untrusted clients; DecodeRecord is fuzzed.
package cursor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"ping/internal/engine"
	"ping/internal/hpart"
	"ping/internal/ping"
)

// recordMagic and recordVersion identify the serialized format; bump
// the version on any payload layout change.
const (
	recordMagic   = "PQC1"
	recordVersion = 2 // v2 added Checkpoint.DictLen/DictSig after LayoutSig
)

var (
	// ErrBadRecord reports a record that failed structural validation
	// (magic, version, length, checksum, or payload layout).
	ErrBadRecord = errors.New("cursor: malformed record")
)

// Record is the durable state of one query lineage: everything needed
// to resume the run, plus the bookkeeping that lets the workload
// profiler observe the lineage exactly once at completion.
type Record struct {
	// ID addresses the cursor; it is embedded in every client token.
	ID [16]byte
	// Fingerprint is the workload-profiler fingerprint of the query, so
	// a resumed lineage aggregates under the same shape as its first
	// segment.
	Fingerprint string
	// Created and LastUsed are unix nanoseconds; LastUsed drives idle
	// eviction and TTL expiry.
	Created  int64
	LastUsed int64
	// Segments counts run segments so far (1 = the initial run);
	// LatencyNS sums their wall-clock time, so the lineage's total
	// latency is observed once, not once per segment.
	Segments  int
	LatencyNS int64
	// Restarted marks a lineage whose epoch lease expired under it: the
	// data moved on, and the run restarted from scratch on the current
	// snapshot. Delivered answers remain sound; only the "resume skips
	// completed steps" economy is lost.
	Restarted bool
	// StepAnswers holds the cumulative answer count after each completed
	// lineage step, so the workload profiler's coverage curve spans the
	// whole lineage, not just the final segment.
	StepAnswers []int
	// Checkpoint is the resumable PQA state (see ping.Checkpoint).
	Checkpoint ping.Checkpoint
}

// EncodeRecord serializes r into the framed, checksummed format.
func EncodeRecord(r *Record) []byte {
	payload := appendRecord(nil, r)
	buf := make([]byte, 0, len(recordMagic)+1+4+len(payload)+4)
	buf = append(buf, recordMagic...)
	buf = append(buf, recordVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return buf
}

// DecodeRecord parses a framed record, validating magic, version,
// length, checksum, and payload layout.
func DecodeRecord(data []byte) (*Record, error) {
	head := len(recordMagic) + 1 + 4
	if len(data) < head+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadRecord, len(data))
	}
	if string(data[:len(recordMagic)]) != recordMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadRecord)
	}
	if v := data[len(recordMagic)]; v != recordVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadRecord, v)
	}
	n := binary.LittleEndian.Uint32(data[len(recordMagic)+1:])
	if uint32(len(data)-head-4) != n {
		return nil, fmt.Errorf("%w: payload length %d in %d-byte frame", ErrBadRecord, n, len(data))
	}
	payload := data[head : head+int(n)]
	if crc := binary.LittleEndian.Uint32(data[head+int(n):]); crc != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadRecord)
	}
	r, rest, err := decodeRecord(payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrBadRecord, len(rest))
	}
	return r, nil
}

func appendRecord(buf []byte, r *Record) []byte {
	buf = append(buf, r.ID[:]...)
	buf = appendString(buf, r.Fingerprint)
	buf = binary.AppendUvarint(buf, uint64(r.Created))
	buf = binary.AppendUvarint(buf, uint64(r.LastUsed))
	buf = binary.AppendUvarint(buf, uint64(r.Segments))
	buf = binary.AppendUvarint(buf, uint64(r.LatencyNS))
	buf = appendBool(buf, r.Restarted)
	buf = binary.AppendUvarint(buf, uint64(len(r.StepAnswers)))
	for _, n := range r.StepAnswers {
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	return appendCheckpoint(buf, &r.Checkpoint)
}

func decodeRecord(data []byte) (*Record, []byte, error) {
	r := &Record{}
	if len(data) < len(r.ID) {
		return nil, nil, fmt.Errorf("%w: short id", ErrBadRecord)
	}
	copy(r.ID[:], data)
	data = data[len(r.ID):]
	var err error
	if r.Fingerprint, data, err = decodeString(data); err != nil {
		return nil, nil, err
	}
	var u uint64
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, nil, err
	}
	r.Created = int64(u)
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, nil, err
	}
	r.LastUsed = int64(u)
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, nil, err
	}
	if u > math.MaxInt32 {
		return nil, nil, fmt.Errorf("%w: %d segments", ErrBadRecord, u)
	}
	r.Segments = int(u)
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, nil, err
	}
	r.LatencyNS = int64(u)
	if r.Restarted, data, err = decodeBool(data); err != nil {
		return nil, nil, err
	}
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, nil, err
	}
	if u > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: %d step answers in %d bytes", ErrBadRecord, u, len(data))
	}
	if u > 0 {
		r.StepAnswers = make([]int, u)
		for i := range r.StepAnswers {
			var v uint64
			if v, data, err = decodeUvarint(data); err != nil {
				return nil, nil, err
			}
			if v > math.MaxInt32 {
				return nil, nil, fmt.Errorf("%w: step answer count %d", ErrBadRecord, v)
			}
			r.StepAnswers[i] = int(v)
		}
	}
	if data, err = decodeCheckpoint(data, &r.Checkpoint); err != nil {
		return nil, nil, err
	}
	return r, data, nil
}

func appendCheckpoint(buf []byte, cp *ping.Checkpoint) []byte {
	buf = appendString(buf, cp.Query)
	buf = binary.AppendUvarint(buf, uint64(cp.Strategy))
	buf = binary.AppendUvarint(buf, uint64(cp.FailurePolicy))
	buf = binary.AppendUvarint(buf, cp.Epoch)
	buf = binary.AppendUvarint(buf, cp.LayoutSig)
	buf = binary.AppendUvarint(buf, uint64(cp.DictLen))
	buf = binary.AppendUvarint(buf, cp.DictSig)
	buf = binary.AppendUvarint(buf, uint64(cp.StepsDone))
	buf = appendKeys(buf, cp.LoadedKeys)
	buf = appendKeys(buf, cp.MissingKeys)
	buf = binary.AppendUvarint(buf, uint64(cp.RowsLoadedCum))
	buf = binary.AppendUvarint(buf, uint64(cp.ElapsedCum))
	buf = binary.AppendUvarint(buf, uint64(cp.PrevAnswers))
	buf = appendBool(buf, cp.Incremental)
	buf = binary.AppendUvarint(buf, uint64(len(cp.PatternRels)))
	for _, rel := range cp.PatternRels {
		buf = engine.AppendRelation(buf, rel)
	}
	if cp.Answers == nil {
		buf = appendBool(buf, false)
	} else {
		buf = appendBool(buf, true)
		buf = engine.AppendRelation(buf, cp.Answers)
	}
	return buf
}

func decodeCheckpoint(data []byte, cp *ping.Checkpoint) ([]byte, error) {
	var err error
	if cp.Query, data, err = decodeString(data); err != nil {
		return nil, err
	}
	var u uint64
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, err
	}
	if u > math.MaxInt32 {
		return nil, fmt.Errorf("%w: strategy %d", ErrBadRecord, u)
	}
	cp.Strategy = ping.SliceStrategy(u)
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, err
	}
	if u > math.MaxInt32 {
		return nil, fmt.Errorf("%w: failure policy %d", ErrBadRecord, u)
	}
	cp.FailurePolicy = ping.FailurePolicy(u)
	if cp.Epoch, data, err = decodeUvarint(data); err != nil {
		return nil, err
	}
	if cp.LayoutSig, data, err = decodeUvarint(data); err != nil {
		return nil, err
	}
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, err
	}
	if u > math.MaxInt32 {
		return nil, fmt.Errorf("%w: dict length %d", ErrBadRecord, u)
	}
	cp.DictLen = int(u)
	if cp.DictSig, data, err = decodeUvarint(data); err != nil {
		return nil, err
	}
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, err
	}
	if u > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %d steps", ErrBadRecord, u)
	}
	cp.StepsDone = int(u)
	if cp.LoadedKeys, data, err = decodeKeys(data); err != nil {
		return nil, err
	}
	if cp.MissingKeys, data, err = decodeKeys(data); err != nil {
		return nil, err
	}
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, err
	}
	cp.RowsLoadedCum = int64(u)
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, err
	}
	cp.ElapsedCum = time.Duration(u)
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, err
	}
	if u > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %d prev answers", ErrBadRecord, u)
	}
	cp.PrevAnswers = int(u)
	if cp.Incremental, data, err = decodeBool(data); err != nil {
		return nil, err
	}
	if u, data, err = decodeUvarint(data); err != nil {
		return nil, err
	}
	if u > uint64(len(data)) {
		return nil, fmt.Errorf("%w: %d relations in %d bytes", ErrBadRecord, u, len(data))
	}
	if u > 0 {
		cp.PatternRels = make([]*engine.Relation, u)
		for i := range cp.PatternRels {
			if cp.PatternRels[i], data, err = engine.DecodeRelation(data); err != nil {
				return nil, fmt.Errorf("%w: relation %d: %v", ErrBadRecord, i, err)
			}
		}
	}
	var has bool
	if has, data, err = decodeBool(data); err != nil {
		return nil, err
	}
	if has {
		if cp.Answers, data, err = engine.DecodeRelation(data); err != nil {
			return nil, fmt.Errorf("%w: answers: %v", ErrBadRecord, err)
		}
	}
	return data, nil
}

func appendKeys(buf []byte, keys []hpart.SubPartKey) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(k.Level))
		buf = binary.AppendUvarint(buf, uint64(k.Prop))
	}
	return buf
}

func decodeKeys(data []byte) ([]hpart.SubPartKey, []byte, error) {
	n, data, err := decodeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	// Each key takes at least two bytes.
	if n > uint64(len(data)/2) {
		return nil, nil, fmt.Errorf("%w: %d keys in %d bytes", ErrBadRecord, n, len(data))
	}
	if n == 0 {
		return nil, data, nil
	}
	keys := make([]hpart.SubPartKey, n)
	for i := range keys {
		var l, p uint64
		if l, data, err = decodeUvarint(data); err != nil {
			return nil, nil, err
		}
		if l > math.MaxInt32 {
			return nil, nil, fmt.Errorf("%w: level %d", ErrBadRecord, l)
		}
		if p, data, err = decodeUvarint(data); err != nil {
			return nil, nil, err
		}
		if p > math.MaxUint32 {
			return nil, nil, fmt.Errorf("%w: prop %d", ErrBadRecord, p)
		}
		keys[i] = hpart.SubPartKey{Level: int(l), Prop: uint32(p)}
	}
	return keys, data, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(data []byte) (string, []byte, error) {
	n, data, err := decodeUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(data)) {
		return "", nil, fmt.Errorf("%w: string of %d bytes in %d", ErrBadRecord, n, len(data))
	}
	return string(data[:n]), data[n:], nil
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func decodeBool(data []byte) (bool, []byte, error) {
	if len(data) < 1 {
		return false, nil, fmt.Errorf("%w: missing bool", ErrBadRecord)
	}
	switch data[0] {
	case 0:
		return false, data[1:], nil
	case 1:
		return true, data[1:], nil
	default:
		return false, nil, fmt.Errorf("%w: bool byte %d", ErrBadRecord, data[0])
	}
}

func decodeUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrBadRecord)
	}
	return v, data[n:], nil
}
