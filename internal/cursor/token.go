package cursor

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Client-facing cursor tokens. A token names (cursor ID, completed
// step): pingd stamps one on every NDJSON step line, so whatever line a
// disconnecting client saw last, it holds a token that resumes from at
// least that point. The format is
//
//	"pqc." + base64url( version u8 | id [16]byte | step uvarint | CRC32-IEEE u32 LE )
//
// where the CRC covers the preceding bytes. The checksum is not a
// security boundary (cursor IDs are 128-bit random, which is the actual
// guessing barrier); it exists to reject corrupted or truncated tokens
// with a clear error instead of a failed lookup. ParseToken is strict —
// wrong prefix, version, length, step bound, or checksum all fail — and
// is fuzzed.

const (
	tokenPrefix  = "pqc."
	tokenVersion = 1
	// maxTokenStep bounds the step claimed by a token; no real schedule
	// comes anywhere near it, and the bound keeps forged tokens from
	// smuggling absurd values into handlers.
	maxTokenStep = 1 << 20
)

// ErrBadToken reports a token that failed structural validation.
var ErrBadToken = errors.New("cursor: malformed token")

// Token encodes (id, step) as an opaque client token.
func Token(id [16]byte, step int) string {
	buf := make([]byte, 0, 1+16+binary.MaxVarintLen64+4)
	buf = append(buf, tokenVersion)
	buf = append(buf, id[:]...)
	buf = binary.AppendUvarint(buf, uint64(step))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return tokenPrefix + base64.RawURLEncoding.EncodeToString(buf)
}

// ParseToken validates and unpacks a client token.
func ParseToken(tok string) (id [16]byte, step int, err error) {
	if len(tok) < len(tokenPrefix) || tok[:len(tokenPrefix)] != tokenPrefix {
		return id, 0, fmt.Errorf("%w: missing %q prefix", ErrBadToken, tokenPrefix)
	}
	buf, err := base64.RawURLEncoding.DecodeString(tok[len(tokenPrefix):])
	if err != nil {
		return id, 0, fmt.Errorf("%w: %v", ErrBadToken, err)
	}
	if len(buf) < 1+16+1+4 {
		return id, 0, fmt.Errorf("%w: %d bytes", ErrBadToken, len(buf))
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return id, 0, fmt.Errorf("%w: checksum mismatch", ErrBadToken)
	}
	if body[0] != tokenVersion {
		return id, 0, fmt.Errorf("%w: unsupported version %d", ErrBadToken, body[0])
	}
	copy(id[:], body[1:17])
	s, n := binary.Uvarint(body[17:])
	if n <= 0 || n != len(body[17:]) {
		return id, 0, fmt.Errorf("%w: bad step", ErrBadToken)
	}
	if s == 0 || s > maxTokenStep {
		return id, 0, fmt.Errorf("%w: step %d out of range", ErrBadToken, s)
	}
	return id, int(s), nil
}
