// TTL-bounded epoch pin leases.
//
// A hibernated query cursor must keep its layout snapshot's files alive
// so that resuming later re-reads exactly the data the interrupted run
// saw — but a dead client must never be able to block the epoch GC
// forever. A Lease squares that circle: it holds a normal epoch pin on
// behalf of an absent client, bounded by a TTL that every touch renews.
// When the TTL lapses the store drops the pin during its next GC pass
// (expiry is checked inside collect, so an expired lease can never keep
// a retired file on disk past the next publish/release/stats call). A
// resume against an expired lease simply re-pins the current epoch and
// reports the run as restarted.
package hpart

import (
	"sync"
	"time"
)

// leaseEntry is the store-side state of one lease. The store's mutex
// guards it.
type leaseEntry struct {
	epoch   uint64
	lay     *Layout
	expires time.Time
}

// Lease is a TTL-bounded pin on one epoch snapshot. The zero of *Lease
// (nil) is valid and behaves as an already-expired lease, so callers
// without a store can pass leases around unconditionally.
type Lease struct {
	s  *Store
	id uint64
}

// PinLease pins the current epoch under a lease that expires ttl from
// now unless renewed. The returned layout is the pinned snapshot.
func (s *Store) PinLease(ttl time.Duration) (*Lease, *Layout) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lay := s.cur.Load()
	s.pins[lay.epoch]++
	s.leaseSeq++
	id := s.leaseSeq
	s.leases[id] = &leaseEntry{epoch: lay.epoch, lay: lay, expires: s.now().Add(ttl)}
	return &Lease{s: s, id: id}, lay
}

// Acquire converts the lease into a regular pin for the duration of one
// run: the leased snapshot is returned together with a release func, and
// the extra pin guarantees the snapshot survives even if the lease
// expires mid-run. It returns ok=false when the lease has already
// expired (or was released), in which case the caller should Pin the
// current epoch and treat the run as restarted.
func (l *Lease) Acquire() (*Layout, func(), bool) {
	if l == nil || l.s == nil {
		return nil, nil, false
	}
	s := l.s
	s.mu.Lock()
	le := s.leases[l.id]
	if le == nil || s.now().After(le.expires) {
		s.expireLocked(s.now())
		s.collect()
		s.mu.Unlock()
		return nil, nil, false
	}
	s.pins[le.epoch]++
	s.mu.Unlock()

	var once sync.Once
	release := func() {
		once.Do(func() {
			s.mu.Lock()
			s.unpinLocked(le.epoch)
			s.collect()
			s.mu.Unlock()
		})
	}
	return le.lay, release, true
}

// Renew extends the lease's TTL to now+ttl. It returns false when the
// lease already expired (renewal cannot resurrect it).
func (l *Lease) Renew(ttl time.Duration) bool {
	if l == nil || l.s == nil {
		return false
	}
	s := l.s
	s.mu.Lock()
	defer s.mu.Unlock()
	le := s.leases[l.id]
	if le == nil {
		return false
	}
	now := s.now()
	if now.After(le.expires) {
		s.expireLocked(now)
		s.collect()
		return false
	}
	le.expires = now.Add(ttl)
	return true
}

// Valid reports whether the lease still holds its pin.
func (l *Lease) Valid() bool {
	if l == nil || l.s == nil {
		return false
	}
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	le := l.s.leases[l.id]
	return le != nil && !l.s.now().After(le.expires)
}

// Epoch returns the leased epoch (0 after expiry or release).
func (l *Lease) Epoch() uint64 {
	if l == nil || l.s == nil {
		return 0
	}
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	if le := l.s.leases[l.id]; le != nil {
		return le.epoch
	}
	return 0
}

// Release drops the lease (and its pin) immediately. Idempotent.
func (l *Lease) Release() {
	if l == nil || l.s == nil {
		return
	}
	s := l.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if le := s.leases[l.id]; le != nil {
		delete(s.leases, l.id)
		s.unpinLocked(le.epoch)
		s.collect()
	}
}

// ExpireLeases drops every lease whose TTL has lapsed and runs the GC.
// It returns the number of leases expired by this call. The store also
// expires lazily on every collect, so calling this is an optimization
// (a periodic sweep), not a correctness requirement.
func (s *Store) ExpireLeases() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.leasesExpired
	s.expireLocked(s.now())
	s.collect()
	return int(s.leasesExpired - before)
}

// SetClock replaces the store's time source (tests only; nil restores
// time.Now).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nowFn = now
}

// now returns the store's current time. Caller holds mu.
func (s *Store) now() time.Time {
	if s.nowFn != nil {
		return s.nowFn()
	}
	return time.Now()
}

// expireLocked drops every lease past its TTL, releasing its pin so the
// next collect can reclaim the files. Caller holds mu.
func (s *Store) expireLocked(now time.Time) {
	for id, le := range s.leases {
		if now.After(le.expires) {
			delete(s.leases, id)
			s.unpinLocked(le.epoch)
			s.leasesExpired++
		}
	}
}

// unpinLocked decrements one epoch's pin refcount. Caller holds mu.
func (s *Store) unpinLocked(epoch uint64) {
	if s.pins[epoch]--; s.pins[epoch] <= 0 {
		delete(s.pins, epoch)
	}
}
