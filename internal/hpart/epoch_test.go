package hpart

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ping/internal/rdf"
)

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// readAll snapshots every sub-partition's rows of a layout.
func readAll(t *testing.T, lay *Layout) map[SubPartKey][]Pair {
	t.Helper()
	out := make(map[SubPartKey][]Pair)
	for _, key := range lay.SubPartitions() {
		pairs, err := lay.ReadSubPartition(key)
		if err != nil {
			t.Fatalf("read %v: %v", key, err)
		}
		out[key] = pairs
	}
	return out
}

// TestStoreSnapshotIsolation is the tentpole's core property: a pinned
// snapshot keeps returning exactly its epoch's rows while a maintainer
// publishes a new epoch, and the new epoch equals a from-scratch
// partition of the updated graph.
func TestStoreSnapshotIsolation(t *testing.T) {
	g := randomGraph(11, 60, 5)
	lay := rebuild(t, g)
	store := NewStore(lay)
	m, err := NewStoreMaintainer(store)
	if err != nil {
		t.Fatal(err)
	}

	pinned, release := store.Pin()
	defer release()
	before := readAll(t, pinned)

	// The batch both moves existing subjects (CS change) and adds a new
	// one, so several sub-partitions are rewritten.
	add := []rdf.Triple{
		{S: g.Dict.EncodeIRI("http://x/s0"), P: g.Dict.EncodeIRI("http://x/extra"), O: g.Dict.EncodeIRI("http://x/o0")},
		{S: g.Dict.EncodeIRI("http://x/brand-new"), P: g.Dict.EncodeIRI("http://x/p0"), O: g.Dict.EncodeIRI("http://x/o1")},
	}
	tr := g.Triples[0]
	remove := []rdf.Triple{tr}
	if err := m.Apply(add, remove); err != nil {
		t.Fatal(err)
	}

	if got := store.Epoch(); got != 1 {
		t.Fatalf("store epoch = %d, want 1", got)
	}
	if pinned.Epoch() != 0 {
		t.Fatalf("pinned snapshot epoch = %d, want 0", pinned.Epoch())
	}

	// The pinned snapshot is bit-for-bit unchanged: same inventory, same
	// rows, readable from storage even though the new epoch superseded
	// some of its files.
	after := readAll(t, pinned)
	if len(after) != len(before) {
		t.Fatalf("pinned inventory changed: %d keys, had %d", len(after), len(before))
	}
	for key, want := range before {
		if !pairsEqual(after[key], want) {
			t.Fatalf("pinned snapshot rows changed for %v", key)
		}
	}

	// The published epoch equals a from-scratch partition of the updated
	// graph.
	g2 := &rdf.Graph{Dict: g.Dict}
	for _, x := range g.Triples {
		if x != tr {
			g2.AddID(x)
		}
	}
	for _, x := range add {
		g2.AddID(x)
	}
	g2.Dedup()
	layoutsEquivalent(t, store.Current(), rebuild(t, g2), "published epoch")
}

// TestEpochGCWaitsForPins verifies the GC contract: generation files
// retired by a publish survive exactly as long as some query pins an
// epoch that can read them.
func TestEpochGCWaitsForPins(t *testing.T) {
	g := randomGraph(7, 50, 4)
	lay := rebuild(t, g)
	store := NewStore(lay)
	m, err := NewStoreMaintainer(store)
	if err != nil {
		t.Fatal(err)
	}

	pinned, release := store.Pin()
	oldPaths := make(map[SubPartKey]string)
	for _, key := range pinned.SubPartitions() {
		oldPaths[key] = pinned.subPartFile(key)
	}

	add := []rdf.Triple{{
		S: g.Dict.EncodeIRI("http://x/s0"),
		P: g.Dict.EncodeIRI("http://x/extra"),
		O: g.Dict.EncodeIRI("http://x/o0"),
	}}
	if err := m.Apply(add, nil); err != nil {
		t.Fatal(err)
	}

	cur := store.Current()
	var rewritten []SubPartKey
	for key, path := range oldPaths {
		if !cur.HasSubPartition(key) || cur.subPartFile(key) != path {
			rewritten = append(rewritten, key)
		}
	}
	if len(rewritten) == 0 {
		t.Fatal("update rewrote no sub-partitions; test is vacuous")
	}

	st := store.Stats()
	if st.RetiredFiles == 0 || st.FilesRemoved != 0 {
		t.Fatalf("with a pin: stats %+v, want retired files and no removals", st)
	}
	for _, key := range rewritten {
		if !lay.FS().Exists(oldPaths[key]) {
			t.Fatalf("retired file %s deleted while epoch 0 still pinned", oldPaths[key])
		}
		// And the pinned snapshot still reads it.
		if _, err := pinned.ReadSubPartition(key); err != nil {
			t.Fatalf("pinned read of %v failed: %v", key, err)
		}
	}

	// A second pin of the *current* epoch must not keep the retired
	// files alive once the old pin goes away.
	_, release1 := store.Pin()
	release()

	st = store.Stats()
	if st.RetiredFiles != 0 || st.FilesRemoved == 0 {
		t.Fatalf("after last epoch-0 pin released: stats %+v, want all retired files removed", st)
	}
	for _, key := range rewritten {
		if lay.FS().Exists(oldPaths[key]) {
			t.Fatalf("retired file %s survived GC", oldPaths[key])
		}
	}
	release1()

	// release is idempotent: a double release must not corrupt pin
	// accounting.
	release()
	if st := store.Stats(); st.PinnedQueries != 0 {
		t.Fatalf("pins leaked: %+v", st)
	}
}

// TestStoreRandomizedEquivalence mirrors the maintainer property test in
// snapshot mode: every published epoch must equal a from-scratch
// partition of the updated graph, and a Load from the same storage must
// reconstruct it (generation-suffixed paths included).
func TestStoreRandomizedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(seed, 80, 5)
		lay := rebuild(t, g)
		store := NewStore(lay)
		m, err := NewStoreMaintainer(store)
		if err != nil {
			t.Fatal(err)
		}

		current := make(map[rdf.Triple]bool, g.Len())
		for _, tr := range g.Triples {
			current[tr] = true
		}

		for batch := 0; batch < 4; batch++ {
			var add, remove []rdf.Triple
			for tr := range current {
				if rng.Float64() < 0.08 {
					remove = append(remove, tr)
				}
				if len(remove) >= 10 {
					break
				}
			}
			for i := 0; i < 12; i++ {
				s := g.Dict.EncodeIRI(fmt.Sprintf("http://x/s%d", rng.Intn(100)))
				p := g.Dict.EncodeIRI(fmt.Sprintf("http://x/p%d", rng.Intn(7)))
				o := g.Dict.EncodeIRI(fmt.Sprintf("http://x/o%d", rng.Intn(60)))
				add = append(add, rdf.Triple{S: s, P: p, O: o})
			}
			if err := m.Apply(add, remove); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			if got := store.Epoch(); got != uint64(batch+1) {
				t.Fatalf("seed %d batch %d: epoch %d", seed, batch, got)
			}
			for _, tr := range remove {
				delete(current, tr)
			}
			for _, tr := range add {
				current[tr] = true
			}

			g2 := &rdf.Graph{Dict: g.Dict}
			for tr := range current {
				g2.AddID(tr)
			}
			g2.Dedup()
			label := fmt.Sprintf("seed %d batch %d", seed, batch)
			layoutsEquivalent(t, store.Current(), rebuild(t, g2), label)

			// Persistence round-trip: meta column 7 carries generations,
			// so the loaded layout reads the same generation files.
			loaded, err := Load(lay.FS(), g.Dict)
			if err != nil {
				t.Fatalf("%s: load: %v", label, err)
			}
			layoutsEquivalent(t, loaded, store.Current(), label+" loaded")
		}
		// Nothing pinned: the GC must have drained every retired file.
		if st := store.Stats(); st.RetiredFiles != 0 {
			t.Fatalf("seed %d: %d retired files leaked", seed, st.RetiredFiles)
		}
	}
}

// TestGenerationsNeverRegress: deleting a sub-partition and re-creating
// it later must produce a generation (and file path) never used before,
// so a pinned epoch reading the old generation cannot collide with it.
func TestGenerationsNeverRegress(t *testing.T) {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("a"), iri("p"), iri("x"))
	g.Add(iri("b"), iri("p"), iri("y"))
	g.Add(iri("b"), iri("q"), iri("y"))
	g.Dedup()
	lay := rebuild(t, g)
	store := NewStore(lay)
	m, err := NewStoreMaintainer(store)
	if err != nil {
		t.Fatal(err)
	}

	a := g.Dict.LookupIRI("a")
	p := g.Dict.LookupIRI("p")
	q := g.Dict.LookupIRI("q")
	x := g.Dict.LookupIRI("x")

	seen := make(map[string]bool)
	record := func() {
		for _, key := range store.Current().SubPartitions() {
			seen[store.Current().subPartFile(key)] = true
		}
	}
	record()

	// Remove a's only triple (its sub-partition may vanish), then re-add
	// it, twice over, verifying each re-created file is a fresh path.
	for i := 0; i < 2; i++ {
		if err := m.Apply(nil, []rdf.Triple{{S: a, P: p, O: x}}); err != nil {
			t.Fatal(err)
		}
		if err := m.Apply([]rdf.Triple{{S: a, P: p, O: x}}, nil); err != nil {
			t.Fatal(err)
		}
		cur := store.Current()
		for _, key := range cur.SubPartitions() {
			if key.Prop != p && key.Prop != q {
				continue
			}
			path := cur.subPartFile(key)
			if seen[path] {
				t.Fatalf("round %d: generation path %s reused", i, path)
			}
			seen[path] = true
		}
	}
}

// TestStaleCachePutDropped is the deterministic regression test for the
// invalidate/rewrite cache race (satellite of the snapshot-isolation
// issue): a cached read that decodes a file, loses the CPU to an
// in-place maintainer rewrite of the same sub-partition, and then
// performs its cache put must NOT install the pre-rewrite rows.
func TestStaleCachePutDropped(t *testing.T) {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	// s1 and s2 share CS {p, q}: one sub-partition per property holds
	// both subjects' rows.
	g.Add(iri("s1"), iri("p"), iri("o1"))
	g.Add(iri("s1"), iri("q"), iri("o1"))
	g.Add(iri("s2"), iri("p"), iri("o2"))
	g.Add(iri("s2"), iri("q"), iri("o2"))
	g.Dedup()
	lay := rebuild(t, g)
	lay.EnableSubPartCache(8)

	s1 := g.Dict.LookupIRI("s1")
	p := g.Dict.LookupIRI("p")
	key := SubPartKey{Level: lay.SI[s1], Prop: p}
	if !lay.HasSubPartition(key) {
		t.Fatalf("no sub-partition %v", key)
	}

	m, err := NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}

	// The hook runs after the reader decoded the OLD file contents but
	// before its cache put — exactly the lost-CPU window. The update
	// gives s1 a new property, so its CS changes and its rows move out of
	// key's file, which is rewritten in place with only s2's rows.
	fired := false
	lay.readHook = func(k SubPartKey) {
		if k != key || fired {
			return
		}
		fired = true
		add := []rdf.Triple{{S: s1, P: g.Dict.EncodeIRI("r"), O: g.Dict.EncodeIRI("o3")}}
		if err := m.AddTriples(add); err != nil {
			t.Errorf("concurrent apply: %v", err)
		}
	}
	defer func() { lay.readHook = nil }()

	staleBlock, _, err := lay.ReadSubPartitionCached(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("rewrite hook never fired")
	}
	// The interleaved read itself returns pre-rewrite rows — that is
	// fine (it raced the writer; both row sets are committed states).
	// What must NOT happen is that row set being served from the cache
	// afterwards.
	stale := staleBlock.Materialize()
	if len(stale) != 2 {
		t.Fatalf("interleaved read returned %d rows, want 2 pre-rewrite rows", len(stale))
	}

	freshBlock, hit, err := lay.ReadSubPartitionCached(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("stale put survived: post-rewrite read was served from cache")
	}
	fresh := freshBlock.Materialize()
	want, err := lay.ReadSubPartition(key)
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(fresh, want) {
		t.Fatalf("post-rewrite cached read = %v, want %v", fresh, want)
	}
	for _, pr := range fresh {
		if pr.S == s1 {
			t.Fatal("post-rewrite read still contains the moved subject's row")
		}
	}

	// And now the cache serves the fresh rows.
	againBlock, hit, err := lay.ReadSubPartitionCached(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || !pairsEqual(againBlock.Materialize(), want) {
		t.Fatal("fresh rows were not cached")
	}
}

// TestCloneIsolation: mutating a clone's maps must not leak into the
// original (the maintainer relies on this for copy-on-write batches).
func TestCloneIsolation(t *testing.T) {
	g := randomGraph(3, 30, 3)
	lay := rebuild(t, g)
	cp := lay.Clone()

	var someKey SubPartKey
	for key := range lay.SubPartRows {
		someKey = key
		break
	}
	cp.SubPartRows[someKey] = 999999
	cp.gen[someKey] = 42
	cp.SI[12345] = 7

	if lay.SubPartRows[someKey] == 999999 {
		t.Error("SubPartRows shared between clone and original")
	}
	if lay.gen[someKey] == 42 {
		t.Error("gen shared between clone and original")
	}
	if lay.SI[12345] == 7 {
		t.Error("SI shared between clone and original")
	}
	if cp.Dict != lay.Dict {
		t.Error("Dict must be shared")
	}
	if cp.subPartCache() != lay.subPartCache() {
		t.Error("decoded cache must be shared (entries are generation-keyed)")
	}
}
