// Package hpart implements PING's hierarchical partitioner (Algorithm 1 of
// the paper, §3.5–3.8). Given an RDF graph it
//
//  1. extracts the CS hierarchy (package cs),
//  2. assigns every triple to the level of its subject's characteristic
//     set — the levels L₁..Lₙ are disjoint (modularity, Thm 3.4) and
//     jointly cover the graph (losslessness, Thm 3.5),
//  3. vertically sub-partitions every level by property: L_i[p] holds only
//     the (subject, object) pairs for p — the predicate is implied by the
//     file name, saving space (§3.6),
//  4. builds the three indexes of §3.7: VP (property → levels),
//     SI (subject → level), OI (object → levels),
//
// and stores sub-partitions plus indexes as columnar files in a dfs
// file system, mirroring the paper's Parquet-on-HDFS layout.
package hpart

import (
	"context"
	"fmt"
	"maps"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ping/internal/columnar"
	"ping/internal/cs"
	"ping/internal/dfs"
	"ping/internal/rdf"
)

// Pair is one row of a vertical sub-partition: a subject and object ID.
// It aliases rdf.SOPair so engines and baselines share the representation.
type Pair = rdf.SOPair

// SubPartKey identifies a vertical sub-partition L_level[Prop].
type SubPartKey struct {
	Level int
	Prop  rdf.ID
}

func (k SubPartKey) String() string { return fmt.Sprintf("L%d[p%d]", k.Level, k.Prop) }

// Layout is a partitioned dataset: the CS hierarchy, the three indexes,
// per-sub-partition row counts, and the file system holding the data.
type Layout struct {
	// Dict is shared with the source graph so IDs remain comparable.
	Dict *rdf.Dict
	// dictView pins the dictionary prefix visible to this snapshot: the
	// (length, signature) captured when the epoch was built. Queries
	// resolve constants and decode answers through the view, so a
	// maintainer growing the shared Dict never leaks new terms into an
	// older epoch. Nil only for hand-assembled layouts (see DictView).
	dictView *rdf.DictView
	// dictBuild is the wall-clock cost of capturing and signing the
	// epoch's dictionary snapshot (for loaded layouts: re-signing the
	// persisted dictionary).
	dictBuild time.Duration
	// Hierarchy is the mined CS hierarchy.
	Hierarchy *cs.Hierarchy
	// NumLevels is the hierarchy depth (number of partitions).
	NumLevels int

	// VP maps each property to the levels where it occurs (§3.7).
	VP map[rdf.ID]LevelSet
	// SI maps each subject to its unique level (unique by modularity).
	SI map[rdf.ID]int
	// OI maps each object to the levels where it occurs as an object.
	OI map[rdf.ID]LevelSet

	// LevelMap remaps logical hierarchy levels to the physical level whose
	// files actually hold their data. Nil (or an absent entry) means
	// identity. The layout advisor merges cold adjacent CS levels by
	// rewriting their files into a shallower level and recording the
	// remap here, so later maintenance batches keep placing subjects of
	// the merged CSs at the physical level instead of undoing the merge.
	// Entries always map downward (physical < logical) and are
	// normalized: a physical level is never itself remapped.
	LevelMap map[int]int

	// SubPartRows holds the row count of every sub-partition, used for
	// join ordering and data-access accounting without touching files.
	SubPartRows map[SubPartKey]int
	// LevelTriples[i] is the number of triples on level i+1 (Fig. 5).
	LevelTriples []int64

	// PreprocessTime is the wall-clock duration of Partition.
	PreprocessTime time.Duration
	// StoredBytes is the total size of all written partition files
	// (excluding indexes), the numerator of the Fig. 7 reduction factor.
	StoredBytes int64

	fs *dfs.FS
	// blooms holds the optional per-sub-partition membership filters
	// (§6.2 extension); nil when not built.
	blooms map[SubPartKey]SubPartBlooms
	// joins holds the optional workload-advised join-reduction filters
	// (see joinreduce.go); nil when none are installed. Folded into
	// Signature because reductions change which sub-partitions a query
	// schedule visits.
	joins map[JoinKey]*JoinReduction

	// gen maps a sub-partition to the generation of its backing file;
	// an absent key means generation 0, the path Partition writes. The
	// epoch maintainer bumps a sub-partition's generation on every
	// rewrite so snapshots pinned to older epochs keep reading their
	// own (still present) files.
	gen map[SubPartKey]uint64
	// epoch numbers the snapshot this layout represents; 0 for a fresh
	// or loaded layout, assigned by Store.publish afterwards.
	epoch uint64
	// sig caches the content signature (see Signature); 0 means not yet
	// computed. Deliberately not copied by Clone — a mutated clone must
	// hash afresh.
	sig atomic.Uint64

	// cache is the optional LRU of decoded sub-partitions (see
	// EnableSubPartCache); cacheMu guards installation/removal.
	cacheMu sync.Mutex
	cache   *subPartCache

	// readHook, when non-nil, runs between a cache-missing storage read
	// and the cache re-insert. Test instrumentation only: it opens the
	// read/rewrite interleaving window deterministically.
	readHook func(SubPartKey)
}

// Options configures Partition.
type Options struct {
	// FS is the destination file system; nil means a fresh in-memory one.
	FS *dfs.FS
	// Encoding selects the columnar encoding for sub-partition files.
	// PING's storage policy is plain varint columns (predicate names are
	// dropped; heavier compression is left to the baselines). Zero value
	// (Plain) is the paper-faithful setting.
	Encoding columnar.Encoding
	// BuildBlooms additionally builds per-sub-partition Bloom filters
	// that the query processor can use to skip files that cannot contain
	// a pattern's constant (the §6.2 extension).
	BuildBlooms bool
}

// Partition runs Algorithm 1 over the graph. The input graph should be
// deduplicated; duplicate triples would otherwise inflate sub-partitions.
func Partition(g *rdf.Graph, opts Options) (*Layout, error) {
	start := time.Now()
	fs := opts.FS
	if fs == nil {
		fs = dfs.New(dfs.Config{})
	}

	// Line 2: extract the CS hierarchy.
	csBySubject := cs.Extract(g)
	h := cs.Build(csBySubject)
	if h.MaxLevel() > MaxLevels {
		return nil, fmt.Errorf("hpart: hierarchy depth %d exceeds supported %d", h.MaxLevel(), MaxLevels)
	}

	lay := &Layout{
		Dict:         g.Dict,
		Hierarchy:    h,
		NumLevels:    h.MaxLevel(),
		VP:           make(map[rdf.ID]LevelSet),
		SI:           make(map[rdf.ID]int, len(csBySubject)),
		OI:           make(map[rdf.ID]LevelSet),
		SubPartRows:  make(map[SubPartKey]int),
		LevelTriples: make([]int64, h.MaxLevel()),
		gen:          make(map[SubPartKey]uint64),
		fs:           fs,
	}

	// Pre-resolve each subject's level once, into a dense array indexed
	// by term ID (the dictionary hands out contiguous IDs). Dense arrays
	// replace four hash-map writes per triple in the hot loop below.
	nTerms := g.Dict.Len()
	levelOf := make([]uint8, nTerms)
	for s, set := range csBySubject {
		levelOf[s] = uint8(h.LevelOf(set))
	}
	vp := make([]LevelSet, nTerms)
	oi := make([]LevelSet, nTerms)

	// Lines 3-12: one pass over the triples building sub-partitions and
	// indexes.
	sub := make(map[SubPartKey][]Pair)
	for _, t := range g.Triples {
		i := int(levelOf[t.S])
		key := SubPartKey{Level: i, Prop: t.P}
		sub[key] = append(sub[key], Pair{S: t.S, O: t.O})
		lay.LevelTriples[i-1]++
		vp[t.P] = vp[t.P].Add(i)
		oi[t.O] = oi[t.O].Add(i)
	}
	// Materialize the sparse index maps from the dense arrays.
	for id := 0; id < nTerms; id++ {
		if vp[id] != 0 {
			lay.VP[rdf.ID(id)] = vp[id]
		}
		if oi[id] != 0 {
			lay.OI[rdf.ID(id)] = oi[id]
		}
		if l := levelOf[id]; l != 0 {
			lay.SI[rdf.ID(id)] = int(l)
		}
	}

	// Persist sub-partitions as two-column files.
	if opts.BuildBlooms {
		lay.blooms = make(map[SubPartKey]SubPartBlooms, len(sub))
	}
	for key, pairs := range sub {
		// Persist in (S, O) order: sorted columns delta-compress better on
		// disk and let the resident cache pack without re-sorting.
		sort.Slice(pairs, func(i, j int) bool { return rdf.SOPairLess(pairs[i], pairs[j]) })
		lay.SubPartRows[key] = len(pairs)
		if opts.BuildBlooms {
			b := buildBlooms(pairs)
			lay.blooms[key] = b
			if err := lay.writeBlooms(key, b); err != nil {
				return nil, err
			}
		}
		scol := make([]uint32, len(pairs))
		ocol := make([]uint32, len(pairs))
		for i, pr := range pairs {
			scol[i] = pr.S
			ocol[i] = pr.O
		}
		w, err := fs.Create(subPartPath(key))
		if err != nil {
			return nil, fmt.Errorf("hpart: %w", err)
		}
		n, err := columnar.WriteColumns(w, [][]uint32{scol, ocol}, opts.Encoding)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("hpart: write %s: %w", key, err)
		}
		lay.StoredBytes += n
	}

	if err := lay.writeIndexes(); err != nil {
		return nil, err
	}
	lay.refreshDictSnapshot()
	lay.PreprocessTime = time.Since(start)
	return lay, nil
}

// refreshDictSnapshot re-pins the layout to the dictionary's current
// (length, signature) prefix, timing the capture. Called when a layout is
// built, loaded, or republished after a maintenance batch that interned
// new terms.
func (l *Layout) refreshDictSnapshot() {
	t0 := time.Now()
	l.dictView = l.Dict.Snapshot()
	l.dictBuild = time.Since(t0)
}

// DictView returns the dictionary prefix pinned to this snapshot. Layouts
// assembled by hand (tests) without a snapshot fall back to viewing the
// dictionary's current state; the fallback never mutates the layout, so
// concurrent callers are safe.
func (l *Layout) DictView() *rdf.DictView {
	if l.dictView != nil {
		return l.dictView
	}
	return l.Dict.Snapshot()
}

// DictBuildTime reports the cost of capturing this epoch's dictionary
// snapshot.
func (l *Layout) DictBuildTime() time.Duration { return l.dictBuild }

// subPartPath is the generation-0 path of a sub-partition — the name
// Partition writes. Rewrites by an epoch maintainer land on successive
// generations of this path (see Layout.subPartFile).
func subPartPath(key SubPartKey) string {
	return fmt.Sprintf("levels/L%02d/p%d.pcol", key.Level, key.Prop)
}

// subPartFile is the path of the sub-partition file this layout snapshot
// reads: the generation the layout's gen map pins.
func (l *Layout) subPartFile(key SubPartKey) string {
	return dfs.GenPath(subPartPath(key), l.gen[key])
}

// Generation reports the file generation backing a sub-partition in this
// snapshot (0 for files written by Partition and never rewritten).
func (l *Layout) Generation(key SubPartKey) uint64 { return l.gen[key] }

// Epoch reports the snapshot's epoch number: 0 for a fresh or loaded
// layout, and the publish sequence number for layouts obtained from a
// Store.
func (l *Layout) Epoch() uint64 { return l.epoch }

// Clone returns a copy-on-write snapshot of the layout: the index maps,
// sub-partition inventory, generations, and bloom filters are copied so
// the clone can be mutated without affecting concurrent readers of the
// receiver. The dictionary, hierarchy, file system, and the decoded
// sub-partition cache are shared — the cache is keyed by file generation,
// so entries of different snapshots never collide.
func (l *Layout) Clone() *Layout {
	cp := &Layout{
		Dict:           l.Dict,
		dictView:       l.dictView,
		dictBuild:      l.dictBuild,
		Hierarchy:      l.Hierarchy,
		NumLevels:      l.NumLevels,
		LevelMap:       maps.Clone(l.LevelMap),
		VP:             maps.Clone(l.VP),
		SI:             maps.Clone(l.SI),
		OI:             maps.Clone(l.OI),
		SubPartRows:    maps.Clone(l.SubPartRows),
		LevelTriples:   append([]int64(nil), l.LevelTriples...),
		PreprocessTime: l.PreprocessTime,
		StoredBytes:    l.StoredBytes,
		fs:             l.fs,
		blooms:         maps.Clone(l.blooms),
		joins:          maps.Clone(l.joins),
		gen:            maps.Clone(l.gen),
		epoch:          l.epoch,
		cache:          l.subPartCache(),
	}
	if cp.gen == nil {
		cp.gen = make(map[SubPartKey]uint64)
	}
	return cp
}

// FS returns the file system backing the layout.
func (l *Layout) FS() *dfs.FS { return l.fs }

// SubPartitions returns the keys of all non-empty sub-partitions.
func (l *Layout) SubPartitions() []SubPartKey {
	out := make([]SubPartKey, 0, len(l.SubPartRows))
	for k := range l.SubPartRows {
		out = append(out, k)
	}
	return out
}

// HasSubPartition reports whether L_level[prop] exists (is non-empty).
func (l *Layout) HasSubPartition(key SubPartKey) bool {
	_, ok := l.SubPartRows[key]
	return ok
}

// ReadSubPartition loads the (subject, object) pairs of L_level[prop] from
// storage. Every call re-reads the file, so callers' row accounting
// reflects real data access.
func (l *Layout) ReadSubPartition(key SubPartKey) ([]Pair, error) {
	return l.ReadSubPartitionCtx(context.Background(), key)
}

// ReadSubPartitionCtx is ReadSubPartition honouring context cancellation:
// the dfs read (including its failover retries) aborts with ctx.Err()
// once ctx is done, so a stuck storage node cannot hang a query past its
// deadline.
func (l *Layout) ReadSubPartitionCtx(ctx context.Context, key SubPartKey) ([]Pair, error) {
	data, err := l.fs.ReadFileCtx(ctx, l.subPartFile(key))
	if err != nil {
		return nil, fmt.Errorf("hpart: open %s: %w", key, err)
	}
	cols, err := columnar.DecodeColumns(data)
	if err != nil {
		return nil, fmt.Errorf("hpart: read %s: %w", key, err)
	}
	if len(cols) != 2 || len(cols[0]) != len(cols[1]) {
		return nil, fmt.Errorf("hpart: %s: malformed sub-partition", key)
	}
	pairs := make([]Pair, len(cols[0]))
	for i := range pairs {
		pairs[i] = Pair{S: cols[0][i], O: cols[1][i]}
	}
	// Sub-partition files are written in (S, O) order (Partition consumes
	// SPO-sorted deduplicated graphs; the maintainer sorts before every
	// rewrite), but resident compression depends on it, so restore the
	// invariant defensively for files from older tools.
	if !sort.SliceIsSorted(pairs, func(i, j int) bool { return rdf.SOPairLess(pairs[i], pairs[j]) }) {
		sort.Slice(pairs, func(i, j int) bool { return rdf.SOPairLess(pairs[i], pairs[j]) })
	}
	return pairs, nil
}

// SubjectLevels returns the SI entry for a subject as a LevelSet (empty if
// the term never occurs as a subject).
func (l *Layout) SubjectLevels(id rdf.ID) LevelSet {
	if lv, ok := l.SI[id]; ok {
		return LevelSet(0).Add(lv)
	}
	return 0
}

// ObjectLevels returns the OI entry for an object (empty if the term never
// occurs as an object).
func (l *Layout) ObjectLevels(id rdf.ID) LevelSet { return l.OI[id] }

// PropertyLevels returns the VP entry for a property (empty if absent).
func (l *Layout) PropertyLevels(id rdf.ID) LevelSet { return l.VP[id] }

// AllLevels returns the set {1..NumLevels}.
func (l *Layout) AllLevels() LevelSet {
	var s LevelSet
	for i := 1; i <= l.NumLevels; i++ {
		s = s.Add(i)
	}
	return s
}

// PhysLevel resolves a logical hierarchy level to the physical level whose
// files hold its data (identity unless an advisor merge remapped it).
func (l *Layout) PhysLevel(level int) int {
	if l.LevelMap == nil {
		return level
	}
	if p, ok := l.LevelMap[level]; ok {
		return p
	}
	return level
}

// TotalTriples returns the number of partitioned triples.
func (l *Layout) TotalTriples() int64 {
	var n int64
	for _, c := range l.LevelTriples {
		n += c
	}
	return n
}
