package hpart

import (
	"testing"
	"testing/quick"
)

func TestLevelSetBasics(t *testing.T) {
	var s LevelSet
	if !s.Empty() || s.Count() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("zero set not empty")
	}
	s = s.Add(3).Add(1).Add(17)
	if s.Empty() || s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	for _, l := range []int{1, 3, 17} {
		if !s.Has(l) {
			t.Errorf("Has(%d) = false", l)
		}
	}
	for _, l := range []int{2, 4, 16, 18, 0, -1, 65} {
		if s.Has(l) {
			t.Errorf("Has(%d) = true", l)
		}
	}
	if s.Min() != 1 || s.Max() != 17 {
		t.Errorf("Min/Max = %d/%d", s.Min(), s.Max())
	}
	got := s.Levels()
	want := []int{1, 3, 17}
	if len(got) != len(want) {
		t.Fatalf("Levels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Levels = %v, want %v", got, want)
		}
	}
}

func TestLevelSetOps(t *testing.T) {
	a := LevelSet(0).Add(1).Add(2).Add(5)
	b := LevelSet(0).Add(2).Add(5).Add(9)
	if got := a.Intersect(b); got.Count() != 2 || !got.Has(2) || !got.Has(5) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got.Count() != 4 {
		t.Errorf("Union = %v", got)
	}
	if got := a.UpTo(2); got.Count() != 2 || got.Has(5) {
		t.Errorf("UpTo(2) = %v", got)
	}
	if got := a.UpTo(0); !got.Empty() {
		t.Errorf("UpTo(0) = %v", got)
	}
	if got := a.UpTo(100); got != a {
		t.Errorf("UpTo(100) = %v", got)
	}
}

func TestLevelSetAddPanicsOutOfRange(t *testing.T) {
	for _, l := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", l)
				}
			}()
			LevelSet(0).Add(l)
		}()
	}
}

func TestLevelSetString(t *testing.T) {
	cases := map[string]LevelSet{
		"{}":    0,
		"{3}":   LevelSet(0).Add(3),
		"{1-3}": LevelSet(0).Add(1).Add(2).Add(3),
		"{2-13}": func() LevelSet {
			s := LevelSet(0)
			for i := 2; i <= 13; i++ {
				s = s.Add(i)
			}
			return s
		}(),
		"{1,3-4,9}": LevelSet(0).Add(1).Add(3).Add(4).Add(9),
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("String(%b) = %q, want %q", uint64(s), got, want)
		}
	}
}

func TestLevelSetQuickInvariants(t *testing.T) {
	err := quick.Check(func(raw uint64, level uint8) bool {
		s := LevelSet(raw)
		l := int(level%MaxLevels) + 1
		withL := s.Add(l)
		return withL.Has(l) && withL.Count() >= s.Count() &&
			withL.Union(s) == withL && s.Intersect(withL) == s
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitJoinSet(t *testing.T) {
	err := quick.Check(func(raw uint64) bool {
		lo, hi := splitSet(LevelSet(raw))
		return joinSet(lo, hi) == LevelSet(raw)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
