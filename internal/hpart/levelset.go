package hpart

import (
	"fmt"
	"math/bits"
	"strings"
)

// LevelSet is a bitset over hierarchy levels 1..64. The paper's deepest
// dataset (DBpedia) has 17 levels; 64 leaves ample headroom while keeping
// the indexes flat arrays of one word per entry.
type LevelSet uint64

// MaxLevels is the deepest hierarchy a LevelSet can represent.
const MaxLevels = 64

// Add returns the set with the given 1-based level included.
func (s LevelSet) Add(level int) LevelSet {
	if level < 1 || level > MaxLevels {
		panic(fmt.Sprintf("hpart: level %d out of range [1,%d]", level, MaxLevels))
	}
	return s | 1<<(level-1)
}

// Has reports whether a level is present.
func (s LevelSet) Has(level int) bool {
	if level < 1 || level > MaxLevels {
		return false
	}
	return s&(1<<(level-1)) != 0
}

// Intersect returns the levels common to both sets.
func (s LevelSet) Intersect(t LevelSet) LevelSet { return s & t }

// Union returns the levels in either set.
func (s LevelSet) Union(t LevelSet) LevelSet { return s | t }

// Empty reports whether no level is present.
func (s LevelSet) Empty() bool { return s == 0 }

// Count returns the number of levels present.
func (s LevelSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Min returns the smallest level present, or 0 when empty.
func (s LevelSet) Min() int {
	if s == 0 {
		return 0
	}
	return bits.TrailingZeros64(uint64(s)) + 1
}

// Max returns the largest level present, or 0 when empty.
func (s LevelSet) Max() int {
	if s == 0 {
		return 0
	}
	return 64 - bits.LeadingZeros64(uint64(s))
}

// Levels returns the present levels in ascending order.
func (s LevelSet) Levels() []int {
	out := make([]int, 0, s.Count())
	for l := s.Min(); l > 0 && l <= s.Max(); l++ {
		if s.Has(l) {
			out = append(out, l)
		}
	}
	return out
}

// UpTo returns the subset of levels ≤ k.
func (s LevelSet) UpTo(k int) LevelSet {
	if k <= 0 {
		return 0
	}
	if k >= MaxLevels {
		return s
	}
	return s & (1<<k - 1)
}

// String renders the set like "{2,5-13}" style ranges, matching how the
// paper writes symbol-level tables (Table 2).
func (s LevelSet) String() string {
	if s == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	levels := s.Levels()
	for i := 0; i < len(levels); {
		j := i
		for j+1 < len(levels) && levels[j+1] == levels[j]+1 {
			j++
		}
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		if j == i {
			fmt.Fprintf(&b, "%d", levels[i])
		} else {
			fmt.Fprintf(&b, "%d-%d", levels[i], levels[j])
		}
		i = j + 1
	}
	b.WriteByte('}')
	return b.String()
}
