package hpart

import (
	"container/list"
	"context"
	"sync"
)

// DefaultSubPartCacheSize is the sub-partition cache capacity installed
// by query processors that do not choose one.
const DefaultSubPartCacheSize = 64

// subPartCache is a concurrency-safe LRU of decoded sub-partitions.
// Repeated queries over the same layout skip the dfs read and the
// columnar decode for cached entries; the maintainer invalidates an
// entry whenever it rewrites the backing file, so cached rows are always
// the current file contents. Cached slices are shared between callers
// and must be treated as immutable.
type subPartCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[SubPartKey]*list.Element
}

type cacheEntry struct {
	key   SubPartKey
	pairs []Pair
}

func newSubPartCache(capacity int) *subPartCache {
	return &subPartCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[SubPartKey]*list.Element, capacity),
	}
}

func (c *subPartCache) get(key SubPartKey) ([]Pair, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).pairs, true
}

func (c *subPartCache) put(key SubPartKey, pairs []Pair) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).pairs = pairs
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, pairs: pairs})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

func (c *subPartCache) invalidate(key SubPartKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.Remove(el)
		delete(c.entries, key)
	}
}

func (c *subPartCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// EnableSubPartCache installs a decoded-sub-partition LRU of the given
// capacity if the layout does not already have one (capacity <= 0 uses
// DefaultSubPartCacheSize). It is safe to call from several processors
// sharing the layout; the first capacity wins.
func (l *Layout) EnableSubPartCache(capacity int) {
	if capacity <= 0 {
		capacity = DefaultSubPartCacheSize
	}
	l.cacheMu.Lock()
	if l.cache == nil {
		l.cache = newSubPartCache(capacity)
	}
	l.cacheMu.Unlock()
}

// DisableSubPartCache drops the cache (and all cached entries).
func (l *Layout) DisableSubPartCache() {
	l.cacheMu.Lock()
	l.cache = nil
	l.cacheMu.Unlock()
}

// SubPartCacheLen reports the number of cached sub-partitions.
func (l *Layout) SubPartCacheLen() int {
	if c := l.subPartCache(); c != nil {
		return c.len()
	}
	return 0
}

func (l *Layout) subPartCache() *subPartCache {
	l.cacheMu.Lock()
	c := l.cache
	l.cacheMu.Unlock()
	return c
}

// invalidateSubPart evicts a cached sub-partition after its file is
// rewritten or removed.
func (l *Layout) invalidateSubPart(key SubPartKey) {
	if c := l.subPartCache(); c != nil {
		c.invalidate(key)
	}
}

// ReadSubPartitionCached is ReadSubPartitionCtx through the layout's LRU
// cache: a hit returns the decoded rows without touching storage (the
// returned slice is shared — callers must not mutate it). Without an
// installed cache it degrades to a plain read with hit=false. Failed
// reads are never cached.
func (l *Layout) ReadSubPartitionCached(ctx context.Context, key SubPartKey) (pairs []Pair, hit bool, err error) {
	c := l.subPartCache()
	if c != nil {
		if pairs, ok := c.get(key); ok {
			return pairs, true, nil
		}
	}
	pairs, err = l.ReadSubPartitionCtx(ctx, key)
	if err != nil {
		return nil, false, err
	}
	if c != nil {
		c.put(key, pairs)
	}
	return pairs, false, nil
}
