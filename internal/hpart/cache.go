package hpart

import (
	"container/list"
	"context"
	"sync"

	"ping/internal/rdf"
)

// DefaultSubPartCacheSize is the sub-partition cache capacity installed
// by query processors that do not choose one.
const DefaultSubPartCacheSize = 64

// cacheKey identifies one decoded file in the cache: the sub-partition
// plus the generation of the backing file. Keying by generation means
// snapshots pinned to different epochs never observe each other's rows —
// a rewrite creates a new generation and therefore a fresh cache slot,
// while the retired generation's entry stays valid for readers still
// pinned to it (the epoch GC purges it once nobody can read it).
type cacheKey struct {
	key SubPartKey
	gen uint64
}

// subPartCache is a concurrency-safe LRU of decoded sub-partitions.
// Repeated queries over the same layout skip the dfs read and the
// columnar decode for cached entries. Cached slices are shared between
// callers and must be treated as immutable.
//
// Puts are generation-tagged to close the read/rewrite race: a reader
// draws a ticket (beginRead) before touching storage, and its put is
// dropped if the entry was invalidated after the ticket was drawn — the
// decoded bytes may predate the rewrite, and re-inserting them would
// resurrect stale rows. Without the ticket, the interleaving
//
//	reader: miss → read old file ............ put(old rows)   ← stale!
//	writer:            invalidate → rewrite file
//
// leaves the cache permanently serving pre-rewrite data.
type subPartCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[cacheKey]*list.Element
	// ticket is a monotonic clock ordering reads against invalidations;
	// invalidatedAt records, per key, the ticket of its last invalidate.
	ticket        uint64
	invalidatedAt map[cacheKey]uint64
	// raw disables delta-varint packing of resident entries (the -dict=off
	// ablation): misses are cached as plain pair slices instead.
	raw bool
	// bytes / rawBytes track the resident payload across entries and what
	// the same entries would cost uncompressed.
	bytes    int64
	rawBytes int64
}

type cacheEntry struct {
	key   cacheKey
	block rdf.PairBlock
}

func newSubPartCache(capacity int) *subPartCache {
	return &subPartCache{
		cap:           capacity,
		ll:            list.New(),
		entries:       make(map[cacheKey]*list.Element, capacity),
		invalidatedAt: make(map[cacheKey]uint64),
	}
}

func (c *subPartCache) get(key cacheKey) (rdf.PairBlock, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return rdf.PairBlock{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).block, true
}

// rawMode reports whether resident entries should stay unpacked.
func (c *subPartCache) rawMode() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.raw
}

// setRaw switches the resident representation. Flipping drops every entry:
// an ablation run must measure its own representation, not inherit blocks
// packed under the previous mode.
func (c *subPartCache) setRaw(raw bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.raw == raw {
		return
	}
	c.raw = raw
	c.ll.Init()
	c.entries = make(map[cacheKey]*list.Element, c.cap)
	c.bytes, c.rawBytes = 0, 0
}

// stats returns the entry count, resident payload bytes, and the
// uncompressed size of the same entries.
func (c *subPartCache) stats() (n int, bytes, rawBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.rawBytes
}

// beginRead draws the ticket a reader must present to put: any
// invalidation that happens after this call outranks the eventual put.
func (c *subPartCache) beginRead() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticket++
	return c.ticket
}

// put inserts a block decoded by a read that started at the given ticket.
// The put is dropped when the key was invalidated after the ticket was
// drawn: the rows were decoded from the pre-invalidation file contents.
func (c *subPartCache) put(key cacheKey, block rdf.PairBlock, ticket uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.invalidatedAt[key] > ticket {
		return // stale: file rewritten while the read was in flight
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(block.Bytes()) - int64(e.block.Bytes())
		c.rawBytes += int64(block.RawBytes()) - int64(e.block.RawBytes())
		e.block = block
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, block: block})
	c.bytes += int64(block.Bytes())
	c.rawBytes += int64(block.RawBytes())
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		e := last.Value.(*cacheEntry)
		c.bytes -= int64(e.block.Bytes())
		c.rawBytes -= int64(e.block.RawBytes())
		delete(c.entries, e.key)
	}
}

// remove drops an entry (if present) and settles the byte accounting.
// Callers must hold c.mu.
func (c *subPartCache) remove(key cacheKey) {
	if el, ok := c.entries[key]; ok {
		c.ll.Remove(el)
		e := el.Value.(*cacheEntry)
		c.bytes -= int64(e.block.Bytes())
		c.rawBytes -= int64(e.block.RawBytes())
		delete(c.entries, key)
	}
}

// invalidate evicts a key and bars any in-flight read that started
// before now from re-inserting it.
func (c *subPartCache) invalidate(key cacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticket++
	c.invalidatedAt[key] = c.ticket
	c.remove(key)
}

// purge forgets a key entirely — entry and invalidation bookkeeping.
// The epoch GC calls it when a retired generation file is deleted: the
// (key, generation) pair can never be read again, so nothing is left to
// guard against.
func (c *subPartCache) purge(key cacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.invalidatedAt, key)
	c.remove(key)
}

func (c *subPartCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// EnableSubPartCache installs a decoded-sub-partition LRU of the given
// capacity if the layout does not already have one (capacity <= 0 uses
// DefaultSubPartCacheSize). It is safe to call from several processors
// sharing the layout; the first capacity wins.
func (l *Layout) EnableSubPartCache(capacity int) {
	if capacity <= 0 {
		capacity = DefaultSubPartCacheSize
	}
	l.cacheMu.Lock()
	if l.cache == nil {
		l.cache = newSubPartCache(capacity)
	}
	l.cacheMu.Unlock()
}

// DisableSubPartCache drops the cache (and all cached entries).
func (l *Layout) DisableSubPartCache() {
	l.cacheMu.Lock()
	l.cache = nil
	l.cacheMu.Unlock()
}

// SubPartCacheLen reports the number of cached sub-partitions.
func (l *Layout) SubPartCacheLen() int {
	if c := l.subPartCache(); c != nil {
		return c.len()
	}
	return 0
}

// SubPartCacheStats reports the resident footprint of the decoded
// sub-partition cache: entry count, resident payload bytes, and what the
// same entries would occupy as raw 8-byte pairs. bytes/rawBytes is the
// per-cached-sub-partition compression the dictionary-encoded resident
// layout buys.
func (l *Layout) SubPartCacheStats() (entries int, bytes, rawBytes int64) {
	if c := l.subPartCache(); c != nil {
		return c.stats()
	}
	return 0, 0, 0
}

// SetResidentRaw selects the resident representation of cached
// sub-partitions: packed delta-varint blocks (default) or raw pair slices
// (the -dict=off ablation). Flipping the mode drops the cache so
// measurements never mix representations. Safe to call on layouts without
// an installed cache (no-op).
func (l *Layout) SetResidentRaw(raw bool) {
	if c := l.subPartCache(); c != nil {
		c.setRaw(raw)
	}
}

func (l *Layout) subPartCache() *subPartCache {
	l.cacheMu.Lock()
	c := l.cache
	l.cacheMu.Unlock()
	return c
}

// invalidateSubPart evicts a cached sub-partition after its backing file
// (at the layout's current generation) is rewritten or removed in place.
func (l *Layout) invalidateSubPart(key SubPartKey) {
	if c := l.subPartCache(); c != nil {
		c.invalidate(cacheKey{key: key, gen: l.gen[key]})
	}
}

// ReadSubPartitionCached is ReadSubPartitionCtx through the layout's LRU
// cache: a hit returns the resident block without touching storage
// (blocks are immutable and shared between callers). On a miss the
// decoded rows are packed into a delta-varint block before insertion
// (unless the cache is in raw mode — the -dict=off ablation) so the
// cache's resident set holds compressed sorted ID columns, not 8-byte
// pairs. Without an installed cache it degrades to a plain read with
// hit=false. Failed reads are never cached, and a read that raced a
// rewrite of the same generation is dropped rather than cached (see
// subPartCache).
func (l *Layout) ReadSubPartitionCached(ctx context.Context, key SubPartKey) (block rdf.PairBlock, hit bool, err error) {
	c := l.subPartCache()
	ck := cacheKey{key: key, gen: l.gen[key]}
	var ticket uint64
	if c != nil {
		if b, ok := c.get(ck); ok {
			return b, true, nil
		}
		ticket = c.beginRead()
	}
	pairs, err := l.ReadSubPartitionCtx(ctx, key)
	if err != nil {
		return rdf.PairBlock{}, false, err
	}
	if l.readHook != nil {
		l.readHook(key)
	}
	if c != nil && !c.rawMode() {
		block = rdf.PackPairs(pairs)
	} else {
		block = rdf.RawPairs(pairs)
	}
	if c != nil {
		c.put(ck, block, ticket)
	}
	return block, false, nil
}
