package hpart

import (
	"container/list"
	"context"
	"sync"
)

// DefaultSubPartCacheSize is the sub-partition cache capacity installed
// by query processors that do not choose one.
const DefaultSubPartCacheSize = 64

// cacheKey identifies one decoded file in the cache: the sub-partition
// plus the generation of the backing file. Keying by generation means
// snapshots pinned to different epochs never observe each other's rows —
// a rewrite creates a new generation and therefore a fresh cache slot,
// while the retired generation's entry stays valid for readers still
// pinned to it (the epoch GC purges it once nobody can read it).
type cacheKey struct {
	key SubPartKey
	gen uint64
}

// subPartCache is a concurrency-safe LRU of decoded sub-partitions.
// Repeated queries over the same layout skip the dfs read and the
// columnar decode for cached entries. Cached slices are shared between
// callers and must be treated as immutable.
//
// Puts are generation-tagged to close the read/rewrite race: a reader
// draws a ticket (beginRead) before touching storage, and its put is
// dropped if the entry was invalidated after the ticket was drawn — the
// decoded bytes may predate the rewrite, and re-inserting them would
// resurrect stale rows. Without the ticket, the interleaving
//
//	reader: miss → read old file ............ put(old rows)   ← stale!
//	writer:            invalidate → rewrite file
//
// leaves the cache permanently serving pre-rewrite data.
type subPartCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[cacheKey]*list.Element
	// ticket is a monotonic clock ordering reads against invalidations;
	// invalidatedAt records, per key, the ticket of its last invalidate.
	ticket        uint64
	invalidatedAt map[cacheKey]uint64
}

type cacheEntry struct {
	key   cacheKey
	pairs []Pair
}

func newSubPartCache(capacity int) *subPartCache {
	return &subPartCache{
		cap:           capacity,
		ll:            list.New(),
		entries:       make(map[cacheKey]*list.Element, capacity),
		invalidatedAt: make(map[cacheKey]uint64),
	}
}

func (c *subPartCache) get(key cacheKey) ([]Pair, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).pairs, true
}

// beginRead draws the ticket a reader must present to put: any
// invalidation that happens after this call outranks the eventual put.
func (c *subPartCache) beginRead() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticket++
	return c.ticket
}

// put inserts rows decoded by a read that started at the given ticket.
// The put is dropped when the key was invalidated after the ticket was
// drawn: the rows were decoded from the pre-invalidation file contents.
func (c *subPartCache) put(key cacheKey, pairs []Pair, ticket uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.invalidatedAt[key] > ticket {
		return // stale: file rewritten while the read was in flight
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).pairs = pairs
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, pairs: pairs})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// invalidate evicts a key and bars any in-flight read that started
// before now from re-inserting it.
func (c *subPartCache) invalidate(key cacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticket++
	c.invalidatedAt[key] = c.ticket
	if el, ok := c.entries[key]; ok {
		c.ll.Remove(el)
		delete(c.entries, key)
	}
}

// purge forgets a key entirely — entry and invalidation bookkeeping.
// The epoch GC calls it when a retired generation file is deleted: the
// (key, generation) pair can never be read again, so nothing is left to
// guard against.
func (c *subPartCache) purge(key cacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.invalidatedAt, key)
	if el, ok := c.entries[key]; ok {
		c.ll.Remove(el)
		delete(c.entries, key)
	}
}

func (c *subPartCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// EnableSubPartCache installs a decoded-sub-partition LRU of the given
// capacity if the layout does not already have one (capacity <= 0 uses
// DefaultSubPartCacheSize). It is safe to call from several processors
// sharing the layout; the first capacity wins.
func (l *Layout) EnableSubPartCache(capacity int) {
	if capacity <= 0 {
		capacity = DefaultSubPartCacheSize
	}
	l.cacheMu.Lock()
	if l.cache == nil {
		l.cache = newSubPartCache(capacity)
	}
	l.cacheMu.Unlock()
}

// DisableSubPartCache drops the cache (and all cached entries).
func (l *Layout) DisableSubPartCache() {
	l.cacheMu.Lock()
	l.cache = nil
	l.cacheMu.Unlock()
}

// SubPartCacheLen reports the number of cached sub-partitions.
func (l *Layout) SubPartCacheLen() int {
	if c := l.subPartCache(); c != nil {
		return c.len()
	}
	return 0
}

func (l *Layout) subPartCache() *subPartCache {
	l.cacheMu.Lock()
	c := l.cache
	l.cacheMu.Unlock()
	return c
}

// invalidateSubPart evicts a cached sub-partition after its backing file
// (at the layout's current generation) is rewritten or removed in place.
func (l *Layout) invalidateSubPart(key SubPartKey) {
	if c := l.subPartCache(); c != nil {
		c.invalidate(cacheKey{key: key, gen: l.gen[key]})
	}
}

// ReadSubPartitionCached is ReadSubPartitionCtx through the layout's LRU
// cache: a hit returns the decoded rows without touching storage (the
// returned slice is shared — callers must not mutate it). Without an
// installed cache it degrades to a plain read with hit=false. Failed
// reads are never cached, and a read that raced a rewrite of the same
// generation is dropped rather than cached (see subPartCache).
func (l *Layout) ReadSubPartitionCached(ctx context.Context, key SubPartKey) (pairs []Pair, hit bool, err error) {
	c := l.subPartCache()
	ck := cacheKey{key: key, gen: l.gen[key]}
	var ticket uint64
	if c != nil {
		if pairs, ok := c.get(ck); ok {
			return pairs, true, nil
		}
		ticket = c.beginRead()
	}
	pairs, err = l.ReadSubPartitionCtx(ctx, key)
	if err != nil {
		return nil, false, err
	}
	if l.readHook != nil {
		l.readHook(key)
	}
	if c != nil {
		c.put(ck, pairs, ticket)
	}
	return pairs, false, nil
}
