package hpart

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Signature returns a content hash of the snapshot's sub-partition
// inventory: the hierarchy depth plus every (key, generation, rows)
// triple, order-independent. Two layouts with equal signatures expose
// identical data to a query, so a resumed run observes exactly what the
// interrupted run saw.
//
// Epoch numbers cannot play this role across a process restart — a
// reloaded store starts over at epoch 0 — so durable cursors record the
// signature instead and compare it on resume: equal signature means the
// run can continue exactly; a mismatch means the data changed underneath
// and the run must restart from scratch on the current snapshot.
//
// The hash is computed once per layout (snapshots are immutable after
// publish) and cached. Workload-advised join reductions fold into the
// signature when installed — they change which sub-partitions a schedule
// visits — while layouts without reductions keep the historical value, so
// cursors recorded before the advisor existed still validate.
func (l *Layout) Signature() uint64 {
	if s := l.sig.Load(); s != 0 {
		return s
	}
	s := l.BaseSignature()
	if len(l.joins) > 0 {
		s ^= l.joinsDigest()
		if s == 0 {
			s = 1
		}
	}
	l.sig.Store(s)
	return s
}

// BaseSignature is the inventory-only content hash: Signature without the
// join-reduction fold. SaveJoinReductions stamps persisted reductions
// with it so Load can detect that the data files changed underneath.
func (l *Layout) BaseSignature() uint64 {
	keys := make([]SubPartKey, 0, len(l.SubPartRows))
	for k := range l.SubPartRows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Level != keys[j].Level {
			return keys[i].Level < keys[j].Level
		}
		return keys[i].Prop < keys[j].Prop
	})
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(l.NumLevels))
	for _, k := range keys {
		put(uint64(k.Level))
		put(uint64(k.Prop))
		put(l.gen[k])
		put(uint64(l.SubPartRows[k]))
	}
	s := h.Sum64()
	if s == 0 {
		s = 1 // reserve 0 as "not yet computed"
	}
	return s
}
