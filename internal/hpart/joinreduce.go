package hpart

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"ping/internal/bloom"
	"ping/internal/rdf"
)

// Workload-advised join reductions, after WORQ's reduced-by-join-pattern
// sets: for a join between two properties observed in the hot workload —
// say ?x a ?y . ?y b ?z — a Bloom filter over the b-side join values
// (here: all subjects of b, on every level) tells us which a-side
// sub-partitions contain no row whose object could ever meet a b row.
// Those sub-partitions cannot contribute to any answer of a query
// containing the join, so the planner drops them from the pattern's
// candidate list before loading. Filter false positives only retain
// extra sub-partitions; pruning is decided per sub-partition at advise
// time over the full data, so query answers are unaffected.

// JoinRole says which column of a property participates in a join.
const (
	JoinSubject byte = 'S'
	JoinObject  byte = 'O'
)

// JoinKey identifies a directed join pattern between two properties: the
// RoleA column of PropA equated with the RoleB column of PropB. The
// reduction prunes PropA-side sub-partitions; the symmetric pruning is a
// separate key with the sides swapped.
type JoinKey struct {
	PropA rdf.ID
	PropB rdf.ID
	RoleA byte
	RoleB byte
}

func (k JoinKey) String() string {
	return fmt.Sprintf("p%d.%c=p%d.%c", k.PropA, k.RoleA, k.PropB, k.RoleB)
}

// JoinReduction is one precomputed reduction: the filter over the
// PropB-side join values and the PropA sub-partitions it proved empty of
// joinable rows. Immutable once installed on a layout.
type JoinReduction struct {
	// Filter holds every RoleB value of PropB across all levels. Kept for
	// introspection and persistence; query planning consults only Pruned.
	Filter *bloom.Filter
	// Pruned lists the PropA sub-partitions in which no row's RoleA value
	// hits the filter — none of their rows can satisfy the join.
	Pruned map[SubPartKey]bool
}

// roleValue picks the joining column of a pair.
func roleValue(pr Pair, role byte) rdf.ID {
	if role == JoinSubject {
		return pr.S
	}
	return pr.O
}

// BuildJoinReduction computes the reduction for one join pattern by
// scanning the PropB sub-partitions into a filter and probing every PropA
// sub-partition against it. Returns a reduction with an empty Pruned map
// when nothing can be pruned (callers may discard it).
func (l *Layout) BuildJoinReduction(key JoinKey) (*JoinReduction, error) {
	if key.RoleA != JoinSubject && key.RoleA != JoinObject {
		return nil, fmt.Errorf("hpart: bad join role %q", key.RoleA)
	}
	if key.RoleB != JoinSubject && key.RoleB != JoinObject {
		return nil, fmt.Errorf("hpart: bad join role %q", key.RoleB)
	}
	var bKeys, aKeys []SubPartKey
	var bRows int
	for k, rows := range l.SubPartRows {
		if k.Prop == key.PropB {
			bKeys = append(bKeys, k)
			bRows += rows
		}
		if k.Prop == key.PropA {
			aKeys = append(aKeys, k)
		}
	}
	f := bloom.NewWithEstimates(uint64(bRows+1), bloomFalsePositiveRate)
	for _, k := range bKeys {
		pairs, err := l.ReadSubPartition(k)
		if err != nil {
			return nil, err
		}
		for _, pr := range pairs {
			f.Add(uint64(roleValue(pr, key.RoleB)))
		}
	}
	red := &JoinReduction{Filter: f, Pruned: make(map[SubPartKey]bool)}
	for _, k := range aKeys {
		pairs, err := l.ReadSubPartition(k)
		if err != nil {
			return nil, err
		}
		joinable := false
		for _, pr := range pairs {
			if f.Contains(uint64(roleValue(pr, key.RoleA))) {
				joinable = true
				break
			}
		}
		if !joinable {
			red.Pruned[k] = true
		}
	}
	return red, nil
}

// SetJoinReductions installs (or, with nil, clears) the layout's join
// reductions and invalidates the cached signature. Only call this on
// layouts not yet visible to queries — an unpublished maintainer clone, a
// freshly loaded layout, or a single-threaded offline tool. Published
// epochs must receive reductions through Maintainer.Restructure so
// checkpointed cursors pinned to the old epoch stay consistent.
func (l *Layout) SetJoinReductions(joins map[JoinKey]*JoinReduction) {
	if len(joins) == 0 {
		joins = nil
	}
	l.joins = joins
	l.sig.Store(0)
}

// JoinReductions returns the installed reductions (nil when none). The
// returned map and its reductions must not be mutated.
func (l *Layout) JoinReductions() map[JoinKey]*JoinReduction { return l.joins }

// JoinPruned reports whether the given PropA-side sub-partition is proved
// free of rows joinable under key.
func (l *Layout) JoinPruned(key JoinKey, sub SubPartKey) bool {
	red := l.joins[key]
	return red != nil && red.Pruned[sub]
}

// invalidateJoins drops every reduction touching prop: a rewrite of any of
// prop's sub-partitions may add joinable rows (breaking Pruned soundness)
// or new join values (breaking the filter's no-false-negative guarantee).
func (l *Layout) invalidateJoins(prop rdf.ID) {
	if len(l.joins) == 0 {
		return
	}
	for k := range l.joins {
		if k.PropA == prop || k.PropB == prop {
			delete(l.joins, k)
		}
	}
	if len(l.joins) == 0 {
		l.joins = nil
	}
	l.sig.Store(0)
}

// sortedJoinKeys returns the reduction keys in deterministic order.
func (l *Layout) sortedJoinKeys() []JoinKey {
	keys := make([]JoinKey, 0, len(l.joins))
	for k := range l.joins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.PropA != b.PropA {
			return a.PropA < b.PropA
		}
		if a.PropB != b.PropB {
			return a.PropB < b.PropB
		}
		if a.RoleA != b.RoleA {
			return a.RoleA < b.RoleA
		}
		return a.RoleB < b.RoleB
	})
	return keys
}

// joinsDigest hashes the installed reductions' schedule-relevant content:
// the join keys and their pruned sub-partition sets. Folded into
// Signature so a resumed cursor never silently observes a different
// pruning decision than the run it continues.
func (l *Layout) joinsDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, k := range l.sortedJoinKeys() {
		put(uint64(k.PropA))
		put(uint64(k.PropB))
		put(uint64(k.RoleA))
		put(uint64(k.RoleB))
		red := l.joins[k]
		pruned := make([]SubPartKey, 0, len(red.Pruned))
		for sk := range red.Pruned {
			pruned = append(pruned, sk)
		}
		sort.Slice(pruned, func(i, j int) bool {
			if pruned[i].Level != pruned[j].Level {
				return pruned[i].Level < pruned[j].Level
			}
			return pruned[i].Prop < pruned[j].Prop
		})
		put(uint64(len(pruned)))
		for _, sk := range pruned {
			put(uint64(sk.Level))
			put(uint64(sk.Prop))
		}
	}
	return h.Sum64()
}

// joinsPath is where SaveJoinReductions persists the reductions.
const joinsPath = "advisor/joins.jrd"

// joinsMagic versions the on-disk reduction format.
const joinsMagic = uint32(0x4a524431) // "JRD1"

// SaveJoinReductions persists the installed reductions, stamped with the
// layout's base (inventory-only) signature so a later Load can tell
// whether the data files still match. A layout with no reductions removes
// the file.
func (l *Layout) SaveJoinReductions() error {
	if len(l.joins) == 0 {
		if l.fs.Exists(joinsPath) {
			return l.fs.Remove(joinsPath)
		}
		return nil
	}
	w, err := l.fs.Create(joinsPath)
	if err != nil {
		return fmt.Errorf("hpart: %w", err)
	}
	err = l.writeJoins(w)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("hpart: save join reductions: %w", err)
	}
	return nil
}

func (l *Layout) writeJoins(w io.Writer) error {
	var buf [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], v)
		_, err := w.Write(buf[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := w.Write(buf[:])
		return err
	}
	if err := put32(joinsMagic); err != nil {
		return err
	}
	if err := put64(l.BaseSignature()); err != nil {
		return err
	}
	keys := l.sortedJoinKeys()
	if err := put32(uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		red := l.joins[k]
		if err := put32(uint32(k.PropA)); err != nil {
			return err
		}
		if err := put32(uint32(k.PropB)); err != nil {
			return err
		}
		if err := put32(uint32(k.RoleA)<<8 | uint32(k.RoleB)); err != nil {
			return err
		}
		if _, err := red.Filter.WriteTo(w); err != nil {
			return err
		}
		pruned := make([]SubPartKey, 0, len(red.Pruned))
		for sk := range red.Pruned {
			pruned = append(pruned, sk)
		}
		sort.Slice(pruned, func(i, j int) bool {
			if pruned[i].Level != pruned[j].Level {
				return pruned[i].Level < pruned[j].Level
			}
			return pruned[i].Prop < pruned[j].Prop
		})
		if err := put32(uint32(len(pruned))); err != nil {
			return err
		}
		for _, sk := range pruned {
			if err := put32(uint32(sk.Level)); err != nil {
				return err
			}
			if err := put32(uint32(sk.Prop)); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadJoinReductions restores persisted reductions if (and only if) their
// recorded base signature matches the loaded inventory — a store that was
// updated since the advisor ran silently drops the stale file's contents.
// A corrupt file is likewise ignored: reductions are a re-derivable
// acceleration artifact, never required for correctness.
func (l *Layout) loadJoinReductions() error {
	joins, err := l.readJoins()
	if err != nil || joins == nil {
		return nil
	}
	l.SetJoinReductions(joins)
	return nil
}

func (l *Layout) readJoins() (map[JoinKey]*JoinReduction, error) {
	r, err := l.fs.Open(joinsPath)
	if err != nil {
		return nil, nil // never advised; nothing to load
	}
	defer r.Close()
	var buf [8]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:4]), nil
	}
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := get32()
	if err != nil || magic != joinsMagic {
		return nil, fmt.Errorf("hpart: %s: bad magic", joinsPath)
	}
	baseSig, err := get64()
	if err != nil {
		return nil, fmt.Errorf("hpart: %s: %w", joinsPath, err)
	}
	if baseSig != l.BaseSignature() {
		return nil, nil // data changed since the advisor ran; reductions stale
	}
	n, err := get32()
	if err != nil {
		return nil, fmt.Errorf("hpart: %s: %w", joinsPath, err)
	}
	joins := make(map[JoinKey]*JoinReduction, n)
	for i := uint32(0); i < n; i++ {
		pa, err := get32()
		if err != nil {
			return nil, fmt.Errorf("hpart: %s: %w", joinsPath, err)
		}
		pb, err := get32()
		if err != nil {
			return nil, fmt.Errorf("hpart: %s: %w", joinsPath, err)
		}
		roles, err := get32()
		if err != nil {
			return nil, fmt.Errorf("hpart: %s: %w", joinsPath, err)
		}
		key := JoinKey{
			PropA: rdf.ID(pa),
			PropB: rdf.ID(pb),
			RoleA: byte(roles >> 8),
			RoleB: byte(roles),
		}
		f, err := bloom.Read(r)
		if err != nil {
			return nil, fmt.Errorf("hpart: %s: %w", joinsPath, err)
		}
		np, err := get32()
		if err != nil {
			return nil, fmt.Errorf("hpart: %s: %w", joinsPath, err)
		}
		red := &JoinReduction{Filter: f, Pruned: make(map[SubPartKey]bool, np)}
		for j := uint32(0); j < np; j++ {
			lv, err := get32()
			if err != nil {
				return nil, fmt.Errorf("hpart: %s: %w", joinsPath, err)
			}
			pp, err := get32()
			if err != nil {
				return nil, fmt.Errorf("hpart: %s: %w", joinsPath, err)
			}
			red.Pruned[SubPartKey{Level: int(lv), Prop: rdf.ID(pp)}] = true
		}
		joins[key] = red
	}
	return joins, nil
}
