package hpart

import (
	"fmt"
	"sort"
	"time"

	"ping/internal/columnar"
	"ping/internal/cs"
	"ping/internal/dataflow"
	"ping/internal/dfs"
	"ping/internal/rdf"
)

// PartitionDistributed runs Algorithm 1 as a dataflow job, the way the
// paper's partitioner runs on Spark: characteristic sets are extracted
// with a shuffle-by-subject, the (small) CS hierarchy is built on the
// "driver", levels are attached to triples with a distributed join, and
// sub-partitions plus indexes are produced by keyed reductions. The
// resulting layout is equivalent to the sequential Partition — the
// equivalence is property-tested — while every heavy pass runs
// partition-parallel on the simulated cluster.
func PartitionDistributed(g *rdf.Graph, ctx *dataflow.Context, opts Options) (*Layout, error) {
	if ctx == nil {
		ctx = dataflow.NewContext(1)
	}
	start := time.Now()
	fs := opts.FS
	if fs == nil {
		fs = dfs.New(dfs.Config{})
	}

	idHash := func(k rdf.ID) uint64 { return uint64(k) }
	triples := dataflow.Parallelize(ctx, g.Triples, 0)

	// Stage 1 — extract each subject's characteristic set: shuffle the
	// (subject, property) pairs so a subject's properties are colocated,
	// then fold them into sorted sets.
	subjProps := dataflow.ReduceByKey(
		dataflow.Map(triples, func(t rdf.Triple) dataflow.Pair[rdf.ID, []rdf.ID] {
			return dataflow.Pair[rdf.ID, []rdf.ID]{Key: t.S, Value: []rdf.ID{t.P}}
		}),
		0, idHash,
		func(a, b []rdf.ID) []rdf.ID { return append(a, b...) },
	)
	subjCS := dataflow.Map(subjProps, func(p dataflow.Pair[rdf.ID, []rdf.ID]) dataflow.Pair[rdf.ID, cs.Set] {
		return dataflow.Pair[rdf.ID, cs.Set]{Key: p.Key, Value: cs.NewSet(p.Value)}
	})

	// Stage 2 — the driver builds the hierarchy from the distinct CSs
	// (a few hundred sets at most; this is the part Spark would collect).
	distinct := make(map[string]cs.Set)
	for _, p := range subjCS.Collect() {
		distinct[p.Value.Key()] = p.Value
	}
	sets := make([]cs.Set, 0, len(distinct))
	for _, s := range distinct {
		sets = append(sets, s)
	}
	h := cs.BuildFromSets(sets)
	if h.MaxLevel() > MaxLevels {
		return nil, fmt.Errorf("hpart: hierarchy depth %d exceeds supported %d", h.MaxLevel(), MaxLevels)
	}
	levelByKey := make(map[string]int, len(distinct))
	for key, s := range distinct {
		levelByKey[key] = h.LevelOf(s)
	}

	// Stage 3 — attach each subject's level and join it onto the triples
	// (a broadcast of the level map would also work; the join exercises
	// the shuffle path the way a real cluster would for huge subject
	// sets).
	subjLevel := dataflow.Map(subjCS, func(p dataflow.Pair[rdf.ID, cs.Set]) dataflow.Pair[rdf.ID, int] {
		return dataflow.Pair[rdf.ID, int]{Key: p.Key, Value: levelByKey[p.Value.Key()]}
	})
	keyedTriples := dataflow.Map(triples, func(t rdf.Triple) dataflow.Pair[rdf.ID, rdf.Triple] {
		return dataflow.Pair[rdf.ID, rdf.Triple]{Key: t.S, Value: t}
	})
	leveled := dataflow.JoinByKey(keyedTriples, subjLevel, 0, idHash)

	// Stage 4 — regroup by (level, property) into sub-partitions.
	type keyed struct {
		Level int
		Prop  rdf.ID
	}
	subParts := dataflow.ReduceByKey(
		dataflow.Map(leveled, func(p dataflow.Pair[rdf.ID, dataflow.JoinRow[rdf.Triple, int]]) dataflow.Pair[keyed, []Pair] {
			t, level := p.Value.Left, p.Value.Right
			return dataflow.Pair[keyed, []Pair]{
				Key:   keyed{Level: level, Prop: t.P},
				Value: []Pair{{S: t.S, O: t.O}},
			}
		}),
		0,
		func(k keyed) uint64 { return uint64(k.Level)<<32 | uint64(k.Prop) },
		func(a, b []Pair) []Pair { return append(a, b...) },
	)

	lay := &Layout{
		Dict:        g.Dict,
		Hierarchy:   h,
		NumLevels:   h.MaxLevel(),
		VP:          make(map[rdf.ID]LevelSet),
		SI:          make(map[rdf.ID]int),
		OI:          make(map[rdf.ID]LevelSet),
		SubPartRows: make(map[SubPartKey]int),
		gen:         make(map[SubPartKey]uint64),
		fs:          fs,
	}
	lay.LevelTriples = make([]int64, lay.NumLevels)
	if opts.BuildBlooms {
		lay.blooms = make(map[SubPartKey]SubPartBlooms)
	}

	// Persist sub-partitions (driver-side writes; the dfs is shared).
	collected := subParts.Collect()
	sort.Slice(collected, func(i, j int) bool {
		a, b := collected[i].Key, collected[j].Key
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		return a.Prop < b.Prop
	})
	for _, kv := range collected {
		key := SubPartKey{Level: kv.Key.Level, Prop: kv.Key.Prop}
		pairs := kv.Value
		lay.SubPartRows[key] = len(pairs)
		lay.LevelTriples[key.Level-1] += int64(len(pairs))
		scol := make([]uint32, len(pairs))
		ocol := make([]uint32, len(pairs))
		for i, pr := range pairs {
			scol[i] = pr.S
			ocol[i] = pr.O
		}
		w, err := fs.Create(subPartPath(key))
		if err != nil {
			return nil, fmt.Errorf("hpart: %w", err)
		}
		n, err := columnar.WriteColumns(w, [][]uint32{scol, ocol}, opts.Encoding)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("hpart: write %s: %w", key, err)
		}
		lay.StoredBytes += n
		if opts.BuildBlooms {
			bl := buildBlooms(pairs)
			lay.blooms[key] = bl
			if err := lay.writeBlooms(key, bl); err != nil {
				return nil, err
			}
		}
	}

	// Stage 5 — indexes by keyed reduction: VP and OI union level sets,
	// SI carries each subject's single level.
	vp := dataflow.ReduceByKey(
		dataflow.Map(leveled, func(p dataflow.Pair[rdf.ID, dataflow.JoinRow[rdf.Triple, int]]) dataflow.Pair[rdf.ID, LevelSet] {
			return dataflow.Pair[rdf.ID, LevelSet]{Key: p.Value.Left.P, Value: LevelSet(0).Add(p.Value.Right)}
		}),
		0, idHash,
		func(a, b LevelSet) LevelSet { return a.Union(b) },
	)
	for _, p := range vp.Collect() {
		lay.VP[p.Key] = p.Value
	}
	oi := dataflow.ReduceByKey(
		dataflow.Map(leveled, func(p dataflow.Pair[rdf.ID, dataflow.JoinRow[rdf.Triple, int]]) dataflow.Pair[rdf.ID, LevelSet] {
			return dataflow.Pair[rdf.ID, LevelSet]{Key: p.Value.Left.O, Value: LevelSet(0).Add(p.Value.Right)}
		}),
		0, idHash,
		func(a, b LevelSet) LevelSet { return a.Union(b) },
	)
	for _, p := range oi.Collect() {
		lay.OI[p.Key] = p.Value
	}
	for _, p := range subjLevel.Collect() {
		lay.SI[p.Key] = p.Value
	}

	if err := lay.writeIndexes(); err != nil {
		return nil, err
	}
	lay.PreprocessTime = time.Since(start)
	return lay, nil
}
