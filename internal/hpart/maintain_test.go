package hpart

import (
	"fmt"
	"math/rand"
	"testing"

	"ping/internal/rdf"
)

// layoutsEquivalent checks that two layouts describe the same partitioned
// dataset: same levels, same per-sub-partition row sets, same indexes.
func layoutsEquivalent(t *testing.T, got, want *Layout, label string) {
	t.Helper()
	if got.NumLevels != want.NumLevels {
		t.Fatalf("%s: NumLevels %d != %d", label, got.NumLevels, want.NumLevels)
	}
	if len(got.SubPartRows) != len(want.SubPartRows) {
		t.Fatalf("%s: %d sub-partitions, want %d", label, len(got.SubPartRows), len(want.SubPartRows))
	}
	for key, rows := range want.SubPartRows {
		if got.SubPartRows[key] != rows {
			t.Fatalf("%s: SubPartRows[%v] = %d, want %d", label, key, got.SubPartRows[key], rows)
		}
		gp, err := got.ReadSubPartition(key)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		wp, err := want.ReadSubPartition(key)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		gset := make(map[Pair]bool, len(gp))
		for _, pr := range gp {
			gset[pr] = true
		}
		for _, pr := range wp {
			if !gset[pr] {
				t.Fatalf("%s: %v missing row %v", label, key, pr)
			}
		}
	}
	if len(got.SI) != len(want.SI) {
		t.Fatalf("%s: SI size %d != %d", label, len(got.SI), len(want.SI))
	}
	for s, l := range want.SI {
		if got.SI[s] != l {
			t.Fatalf("%s: SI[%d] = %d, want %d", label, s, got.SI[s], l)
		}
	}
	if len(got.VP) != len(want.VP) {
		t.Fatalf("%s: VP size %d != %d", label, len(got.VP), len(want.VP))
	}
	for p, set := range want.VP {
		if got.VP[p] != set {
			t.Fatalf("%s: VP[%d] = %v, want %v", label, p, got.VP[p], set)
		}
	}
	if len(got.OI) != len(want.OI) {
		t.Fatalf("%s: OI size %d != %d", label, len(got.OI), len(want.OI))
	}
	for o, set := range want.OI {
		if got.OI[o] != set {
			t.Fatalf("%s: OI[%d] = %v, want %v", label, o, got.OI[o], set)
		}
	}
	for i := range want.LevelTriples {
		if got.LevelTriples[i] != want.LevelTriples[i] {
			t.Fatalf("%s: LevelTriples[%d] = %d, want %d",
				label, i, got.LevelTriples[i], want.LevelTriples[i])
		}
	}
}

// rebuild partitions the graph from scratch sharing the same dictionary.
func rebuild(t *testing.T, g *rdf.Graph) *Layout {
	t.Helper()
	lay, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func TestMaintainerAddDeepensHierarchy(t *testing.T) {
	// The paper's hard case: an addition creates a CS that deepens the
	// levels of existing CSs.
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("a"), iri("p1"), iri("x"))
	g.Add(iri("a"), iri("p2"), iri("x"))
	g.Add(iri("b"), iri("p1"), iri("y"))
	g.Add(iri("b"), iri("p2"), iri("y"))
	g.Add(iri("b"), iri("p3"), iri("y"))
	g.Dedup()
	lay := rebuild(t, g)
	if lay.NumLevels != 2 {
		t.Fatalf("base levels = %d, want 2", lay.NumLevels)
	}

	m, err := NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	// New subject c with CS {p1} ⊂ CS(a) ⊂ CS(b): levels deepen to 3.
	c := g.Dict.EncodeIRI("c")
	p1 := g.Dict.LookupIRI("p1")
	z := g.Dict.EncodeIRI("z")
	if err := m.AddTriples([]rdf.Triple{{S: c, P: p1, O: z}}); err != nil {
		t.Fatal(err)
	}
	if m.Layout().NumLevels != 3 {
		t.Fatalf("after add: levels = %d, want 3", m.Layout().NumLevels)
	}
	// a moved from level 1 to 2, b from 2 to 3, c sits at 1.
	if m.Layout().SI[g.Dict.LookupIRI("a")] != 2 {
		t.Errorf("SI[a] = %d, want 2", m.Layout().SI[g.Dict.LookupIRI("a")])
	}
	if m.Layout().SI[g.Dict.LookupIRI("b")] != 3 {
		t.Errorf("SI[b] = %d, want 3", m.Layout().SI[g.Dict.LookupIRI("b")])
	}
	if m.Layout().SI[c] != 1 {
		t.Errorf("SI[c] = %d, want 1", m.Layout().SI[c])
	}

	// Full equivalence with a from-scratch rebuild.
	g.AddID(rdf.Triple{S: c, P: p1, O: z})
	g.Dedup()
	layoutsEquivalent(t, m.Layout(), rebuild(t, g), "deepen")
}

func TestMaintainerRemoveFlattensHierarchy(t *testing.T) {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("a"), iri("p1"), iri("x"))
	g.Add(iri("b"), iri("p1"), iri("y"))
	g.Add(iri("b"), iri("p2"), iri("y"))
	g.Dedup()
	lay := rebuild(t, g)
	if lay.NumLevels != 2 {
		t.Fatalf("base levels = %d", lay.NumLevels)
	}
	m, err := NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	// Removing a's only triple removes CS {p1}; b's CS no longer has a
	// subset below it, so the hierarchy flattens to one level.
	a := g.Dict.LookupIRI("a")
	p1 := g.Dict.LookupIRI("p1")
	x := g.Dict.LookupIRI("x")
	if err := m.RemoveTriples([]rdf.Triple{{S: a, P: p1, O: x}}); err != nil {
		t.Fatal(err)
	}
	if m.Layout().NumLevels != 1 {
		t.Fatalf("after remove: levels = %d, want 1", m.Layout().NumLevels)
	}
	if _, ok := m.Layout().SI[a]; ok {
		t.Error("vanished subject still indexed in SI")
	}

	g2 := rdf.NewGraph()
	g2.Dict = g.Dict
	g2.AddID(rdf.Triple{S: g.Dict.LookupIRI("b"), P: p1, O: g.Dict.LookupIRI("y")})
	g2.AddID(rdf.Triple{S: g.Dict.LookupIRI("b"), P: g.Dict.LookupIRI("p2"), O: g.Dict.LookupIRI("y")})
	g2.Dedup()
	layoutsEquivalent(t, m.Layout(), rebuild(t, g2), "flatten")
}

// TestMaintainerRandomizedEquivalence is the main property test: random
// update batches applied incrementally must yield exactly the layout a
// from-scratch Partition produces on the updated graph.
func TestMaintainerRandomizedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(seed, 80, 5)
		lay := rebuild(t, g)
		m, err := NewMaintainer(lay)
		if err != nil {
			t.Fatal(err)
		}

		current := make(map[rdf.Triple]bool, g.Len())
		for _, tr := range g.Triples {
			current[tr] = true
		}

		for batch := 0; batch < 4; batch++ {
			var add, remove []rdf.Triple
			// Removals: sample existing triples.
			for tr := range current {
				if rng.Float64() < 0.08 {
					remove = append(remove, tr)
				}
				if len(remove) >= 10 {
					break
				}
			}
			// Additions: a mix of new subjects, new properties on
			// existing subjects, and re-additions.
			for i := 0; i < 12; i++ {
				s := g.Dict.EncodeIRI(fmt.Sprintf("http://x/s%d", rng.Intn(100)))
				p := g.Dict.EncodeIRI(fmt.Sprintf("http://x/p%d", rng.Intn(7)))
				o := g.Dict.EncodeIRI(fmt.Sprintf("http://x/o%d", rng.Intn(60)))
				add = append(add, rdf.Triple{S: s, P: p, O: o})
			}
			if err := m.Apply(add, remove); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			for _, tr := range remove {
				delete(current, tr)
			}
			for _, tr := range add {
				current[tr] = true
			}

			// Rebuild from scratch on the updated triple set.
			g2 := &rdf.Graph{Dict: g.Dict}
			for tr := range current {
				g2.AddID(tr)
			}
			g2.Dedup()
			layoutsEquivalent(t, m.Layout(), rebuild(t, g2),
				fmt.Sprintf("seed %d batch %d", seed, batch))
		}
	}
}

func TestMaintainerNoOp(t *testing.T) {
	g := randomGraph(3, 40, 4)
	lay := rebuild(t, g)
	m, err := NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	before := len(lay.SubPartRows)
	if err := m.Apply(nil, nil); err != nil {
		t.Fatal(err)
	}
	// Removing an absent triple and re-adding an existing one are no-ops.
	tr := g.Triples[0]
	ghost := rdf.Triple{S: tr.S, P: tr.P, O: g.Dict.EncodeIRI("http://x/ghost")}
	if err := m.Apply([]rdf.Triple{tr}, []rdf.Triple{ghost}); err != nil {
		t.Fatal(err)
	}
	layoutsEquivalent(t, m.Layout(), rebuild(t, g), "noop")
	if len(m.Layout().SubPartRows) != before {
		t.Error("no-op batch changed the inventory")
	}
}

func TestMaintainerPersistedIndexes(t *testing.T) {
	// After maintenance, reloading the layout from storage must see the
	// updated indexes (apply() rewrites them).
	g := randomGraph(5, 50, 4)
	lay := rebuild(t, g)
	if err := lay.SaveDict(); err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Dict.EncodeIRI("http://x/brand-new")
	p := g.Dict.EncodeIRI("http://x/p0")
	o := g.Dict.EncodeIRI("http://x/o0")
	if err := m.AddTriples([]rdf.Triple{{S: s, P: p, O: o}}); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(lay.FS(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.SI[s] != m.Layout().SI[s] {
		t.Errorf("persisted SI[%d] = %d, want %d", s, reloaded.SI[s], m.Layout().SI[s])
	}
	if reloaded.NumLevels != m.Layout().NumLevels {
		t.Errorf("persisted NumLevels = %d, want %d", reloaded.NumLevels, m.Layout().NumLevels)
	}
}
