package hpart

import (
	"fmt"
	"math/rand"
	"testing"

	"ping/internal/cs"
	"ping/internal/dfs"
	"ping/internal/rdf"
)

// uniprotExample builds the running example of Fig. 1: three proteins with
// nested characteristic sets across three levels.
func uniprotExample() *rdf.Graph {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	g.Add(iri("P26474"), iri("occursIn"), iri("Organism7"))
	g.Add(iri("P26474"), iri("hasKeyword"), iri("Keyword546"))
	g.Add(iri("P43426"), iri("occursIn"), iri("Organism584"))
	g.Add(iri("P43426"), iri("hasKeyword"), iri("Keyword125"))
	g.Add(iri("P43426"), iri("reference"), iri("Article972"))
	g.Add(iri("P38952"), iri("occursIn"), iri("Organism676"))
	g.Add(iri("P38952"), iri("hasKeyword"), iri("Keyword789"))
	g.Add(iri("P38952"), iri("reference"), iri("Article892"))
	g.Add(iri("P38952"), iri("interacts"), iri("P43426"))
	return g
}

// randomGraph generates a graph with controlled CS nesting for property
// tests: subjects pick a depth d and get the first d properties of a
// chain, ensuring multi-level hierarchies.
func randomGraph(seed int64, subjects, maxDepth int) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	props := make([]rdf.Term, maxDepth)
	for i := range props {
		props[i] = rdf.NewIRI(fmt.Sprintf("http://x/p%d", i))
	}
	for s := 0; s < subjects; s++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://x/s%d", s))
		depth := 1 + rng.Intn(maxDepth)
		for d := 0; d < depth; d++ {
			obj := rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(subjects)))
			g.Add(subj, props[d], obj)
		}
	}
	g.Dedup()
	return g
}

func TestPartitionRunningExample(t *testing.T) {
	g := uniprotExample()
	lay, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumLevels != 3 {
		t.Fatalf("NumLevels = %d, want 3", lay.NumLevels)
	}
	// Fig. 1(c): L1 has protein 26474's 2 triples, L2 has 43426's 3, L3
	// has 38952's 4.
	want := []int64{2, 3, 4}
	for i, w := range want {
		if lay.LevelTriples[i] != w {
			t.Errorf("LevelTriples[%d] = %d, want %d", i, lay.LevelTriples[i], w)
		}
	}
	d := g.Dict
	// Fig. 3 index spot-checks.
	occursIn := d.LookupIRI("occursIn")
	if got := lay.PropertyLevels(occursIn); got.String() != "{1-3}" {
		t.Errorf("VP[occursIn] = %v, want {1-3}", got)
	}
	interacts := d.LookupIRI("interacts")
	if got := lay.PropertyLevels(interacts); got.String() != "{3}" {
		t.Errorf("VP[interacts] = %v, want {3}", got)
	}
	reference := d.LookupIRI("reference")
	if got := lay.PropertyLevels(reference); got.String() != "{2-3}" {
		t.Errorf("VP[reference] = %v, want {2-3}", got)
	}
	// SI: Protein26474 on L1; Protein43426 on L2.
	if got := lay.SI[d.LookupIRI("P26474")]; got != 1 {
		t.Errorf("SI[P26474] = %d, want 1", got)
	}
	if got := lay.SI[d.LookupIRI("P43426")]; got != 2 {
		t.Errorf("SI[P43426] = %d, want 2", got)
	}
	// OI: Protein43426 appears as object on L3 (interacts target);
	// Keyword789 on L3.
	if got := lay.ObjectLevels(d.LookupIRI("P43426")); !got.Has(3) {
		t.Errorf("OI[P43426] = %v, want {3}", got)
	}
	if got := lay.ObjectLevels(d.LookupIRI("Keyword789")); got.String() != "{3}" {
		t.Errorf("OI[Keyword789] = %v", got)
	}
}

// TestModularityAndLosslessness verifies Theorems 3.4 and 3.5: the levels
// are pairwise disjoint and their union reassembles the input graph
// exactly.
func TestModularityAndLosslessness(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(seed, 200, 6)
		lay, err := Partition(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Reassemble triples from all sub-partitions.
		seen := make(map[rdf.Triple]int)
		var total int64
		for _, key := range lay.SubPartitions() {
			pairs, err := lay.ReadSubPartition(key)
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != lay.SubPartRows[key] {
				t.Errorf("%v: read %d rows, inventory says %d", key, len(pairs), lay.SubPartRows[key])
			}
			for _, pr := range pairs {
				seen[rdf.Triple{S: pr.S, P: key.Prop, O: pr.O}]++
				total++
			}
		}
		// Modularity: no triple may occur in two sub-partitions.
		for tr, n := range seen {
			if n != 1 {
				t.Fatalf("seed %d: triple %v assigned %d times (modularity violated)", seed, tr, n)
			}
		}
		// Losslessness: the union is exactly the input.
		if total != int64(g.Len()) {
			t.Fatalf("seed %d: reassembled %d triples, input has %d", seed, total, g.Len())
		}
		for _, tr := range g.Triples {
			if seen[tr] != 1 {
				t.Fatalf("seed %d: input triple %v missing from partitions", seed, tr)
			}
		}
		// Level counts must agree.
		if lay.TotalTriples() != int64(g.Len()) {
			t.Errorf("seed %d: TotalTriples = %d, want %d", seed, lay.TotalTriples(), g.Len())
		}
	}
}

// TestIndexesMatchBruteForce verifies the three indexes against direct
// scans of the partitioned triples.
func TestIndexesMatchBruteForce(t *testing.T) {
	g := randomGraph(42, 150, 5)
	lay, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	csBySubject := cs.Extract(g)
	h := cs.Build(csBySubject)
	for _, tr := range g.Triples {
		level := h.LevelOf(csBySubject[tr.S])
		if got := lay.SI[tr.S]; got != level {
			t.Fatalf("SI[%d] = %d, want %d", tr.S, got, level)
		}
		if !lay.VP[tr.P].Has(level) {
			t.Fatalf("VP[%d] missing level %d", tr.P, level)
		}
		if !lay.OI[tr.O].Has(level) {
			t.Fatalf("OI[%d] missing level %d", tr.O, level)
		}
	}
	// No phantom levels: every VP/OI bit must be backed by a triple.
	backedVP := make(map[rdf.ID]LevelSet)
	backedOI := make(map[rdf.ID]LevelSet)
	for _, tr := range g.Triples {
		level := h.LevelOf(csBySubject[tr.S])
		backedVP[tr.P] = backedVP[tr.P].Add(level)
		backedOI[tr.O] = backedOI[tr.O].Add(level)
	}
	for p, set := range lay.VP {
		if set != backedVP[p] {
			t.Errorf("VP[%d] = %v, want %v", p, set, backedVP[p])
		}
	}
	for o, set := range lay.OI {
		if set != backedOI[o] {
			t.Errorf("OI[%d] = %v, want %v", o, set, backedOI[o])
		}
	}
}

func TestPersistRoundTrip(t *testing.T) {
	g := randomGraph(7, 100, 4)
	fs := dfs.New(dfs.Config{})
	lay, err := Partition(g, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := lay.SaveDict(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLevels != lay.NumLevels {
		t.Errorf("NumLevels %d != %d", got.NumLevels, lay.NumLevels)
	}
	if len(got.VP) != len(lay.VP) || len(got.SI) != len(lay.SI) || len(got.OI) != len(lay.OI) {
		t.Errorf("index sizes differ: %d/%d/%d vs %d/%d/%d",
			len(got.VP), len(got.SI), len(got.OI), len(lay.VP), len(lay.SI), len(lay.OI))
	}
	for p, set := range lay.VP {
		if got.VP[p] != set {
			t.Errorf("VP[%d] = %v, want %v", p, got.VP[p], set)
		}
	}
	for s, level := range lay.SI {
		if got.SI[s] != level {
			t.Errorf("SI[%d] = %d, want %d", s, got.SI[s], level)
		}
	}
	for o, set := range lay.OI {
		if got.OI[o] != set {
			t.Errorf("OI[%d] = %v, want %v", o, got.OI[o], set)
		}
	}
	for key, rows := range lay.SubPartRows {
		if got.SubPartRows[key] != rows {
			t.Errorf("SubPartRows[%v] = %d, want %d", key, got.SubPartRows[key], rows)
		}
	}
	for i := range lay.LevelTriples {
		if got.LevelTriples[i] != lay.LevelTriples[i] {
			t.Errorf("LevelTriples[%d] = %d, want %d", i, got.LevelTriples[i], lay.LevelTriples[i])
		}
	}
	// The dictionary must round-trip usable for term resolution.
	if got.Dict.Len() != g.Dict.Len() {
		t.Errorf("dict len %d != %d", got.Dict.Len(), g.Dict.Len())
	}
	// Data must be readable through the loaded layout.
	for _, key := range got.SubPartitions() {
		pairs, err := got.ReadSubPartition(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != got.SubPartRows[key] {
			t.Errorf("%v: %d rows vs inventory %d", key, len(pairs), got.SubPartRows[key])
		}
	}
}

func TestLoadWithProvidedDict(t *testing.T) {
	g := randomGraph(8, 50, 3)
	fs := dfs.New(dfs.Config{})
	if _, err := Partition(g, Options{FS: fs}); err != nil {
		t.Fatal(err)
	}
	// No SaveDict: loading must still work when the dict is supplied.
	got, err := Load(fs, g.Dict)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dict != g.Dict {
		t.Error("provided dict not used")
	}
	// And must fail when the dict is neither supplied nor stored.
	if _, err := Load(fs, nil); err == nil {
		t.Error("Load without dict succeeded")
	}
}

func TestReadMissingSubPartition(t *testing.T) {
	g := uniprotExample()
	lay, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lay.ReadSubPartition(SubPartKey{Level: 9, Prop: 12345}); err == nil {
		t.Error("reading absent sub-partition succeeded")
	}
	if lay.HasSubPartition(SubPartKey{Level: 9, Prop: 12345}) {
		t.Error("HasSubPartition claims absent partition")
	}
}

func TestSubjectLevelsHelper(t *testing.T) {
	g := uniprotExample()
	lay, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := g.Dict
	if got := lay.SubjectLevels(d.LookupIRI("P26474")); got.String() != "{1}" {
		t.Errorf("SubjectLevels(P26474) = %v", got)
	}
	if got := lay.SubjectLevels(d.LookupIRI("Organism7")); !got.Empty() {
		t.Errorf("SubjectLevels(non-subject) = %v", got)
	}
	if got := lay.AllLevels(); got.Count() != 3 {
		t.Errorf("AllLevels = %v", got)
	}
}

func TestPartitionEmptyGraph(t *testing.T) {
	lay, err := Partition(rdf.NewGraph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumLevels != 0 || lay.TotalTriples() != 0 {
		t.Errorf("empty graph: levels=%d triples=%d", lay.NumLevels, lay.TotalTriples())
	}
}

func TestStoredBytesPositive(t *testing.T) {
	g := randomGraph(9, 100, 4)
	lay, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lay.StoredBytes <= 0 {
		t.Errorf("StoredBytes = %d", lay.StoredBytes)
	}
	if lay.PreprocessTime <= 0 {
		t.Errorf("PreprocessTime = %v", lay.PreprocessTime)
	}
}

// TestMultiTypeSubjectSingleLevel checks §3.8's note: a subject with
// multiple rdf:type values still has exactly one CS and one level.
func TestMultiTypeSubjectSingleLevel(t *testing.T) {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	typ := rdf.NewIRI(rdf.RDFType)
	g.Add(iri("s"), typ, iri("TypeA"))
	g.Add(iri("s"), typ, iri("TypeB"))
	g.Add(iri("s"), iri("p"), iri("o"))
	lay, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumLevels != 1 {
		t.Errorf("NumLevels = %d, want 1", lay.NumLevels)
	}
	if got := lay.SI[g.Dict.LookupIRI("s")]; got != 1 {
		t.Errorf("SI[s] = %d", got)
	}
	if lay.TotalTriples() != 3 {
		t.Errorf("TotalTriples = %d, want 3 (type triples partition like any other)", lay.TotalTriples())
	}
}
