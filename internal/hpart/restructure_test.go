package hpart

import (
	"sync"
	"testing"

	"ping/internal/rdf"
)

// rowMultiset flattens a layout into (prop, subject, object) triples,
// ignoring level placement — restructuring moves rows between levels but
// must never create, drop, or duplicate one.
func rowMultiset(t *testing.T, lay *Layout) map[[3]rdf.ID]int {
	t.Helper()
	out := make(map[[3]rdf.ID]int)
	for _, key := range lay.SubPartitions() {
		pairs, err := lay.ReadSubPartition(key)
		if err != nil {
			t.Fatalf("read %v: %v", key, err)
		}
		for _, pr := range pairs {
			out[[3]rdf.ID{key.Prop, pr.S, pr.O}]++
		}
	}
	return out
}

func sameRows(t *testing.T, got, want map[[3]rdf.ID]int, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct rows, want %d", label, len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: row %v count %d, want %d", label, k, got[k], n)
		}
	}
}

func TestMergeLevelsMovesRowsAndRemapsIndexes(t *testing.T) {
	g := randomGraph(21, 80, 5)
	lay := rebuild(t, g)
	if lay.NumLevels < 3 {
		t.Fatalf("levels = %d, want >= 3", lay.NumLevels)
	}
	before := rowMultiset(t, lay)

	m, err := NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	// Collapse the two deepest levels into the level below them.
	into := lay.NumLevels - 2
	merges := []LevelMerge{
		{From: lay.NumLevels - 1, Into: into},
		{From: lay.NumLevels, Into: into},
	}
	if err := m.Restructure(merges, nil); err != nil {
		t.Fatal(err)
	}

	sameRows(t, rowMultiset(t, lay), before, "after merge")
	for _, key := range lay.SubPartitions() {
		if key.Level > into {
			t.Fatalf("sub-partition %v above the merge target survived", key)
		}
	}
	for _, mg := range merges {
		if got := lay.PhysLevel(mg.From); got != into {
			t.Errorf("PhysLevel(%d) = %d, want %d", mg.From, got, into)
		}
	}
	// SI must point at physical levels so lookups hit real files.
	for s, l := range lay.SI {
		if l == merges[0].From || l == merges[1].From {
			t.Fatalf("SI[%d] = %d still references a merged-away level", s, l)
		}
	}
	// OI must agree with the actual object placement after the move.
	for _, key := range lay.SubPartitions() {
		pairs, err := lay.ReadSubPartition(key)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range pairs {
			if !lay.OI[pr.O].Has(key.Level) {
				t.Fatalf("OI[%d] misses level %d after merge", pr.O, key.Level)
			}
		}
	}
}

func TestMergeLevelsRejectsBadPlans(t *testing.T) {
	lay := rebuild(t, randomGraph(22, 40, 4))
	m, err := NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	for _, merges := range [][]LevelMerge{
		{{From: 2, Into: 2}},                     // not strictly downward
		{{From: 1, Into: 2}},                     // upward
		{{From: 2, Into: 0}},                     // below the hierarchy
		{{From: lay.NumLevels + 1, Into: 1}},     // beyond the hierarchy
		{{From: 3, Into: 1}, {From: 3, Into: 2}}, // duplicate source
	} {
		if err := m.Restructure(merges, nil); err == nil {
			t.Errorf("merges %v: accepted, want error", merges)
		}
	}
}

// TestMaintenanceKeepsMergedPlacement is the regression the advisor
// depends on: a data batch after a merge must keep placing subjects at
// the merged (physical) level, not silently undo the merge by treating
// the remap as a hierarchy shift.
func TestMaintenanceKeepsMergedPlacement(t *testing.T) {
	g := randomGraph(23, 60, 4)
	lay := rebuild(t, g)
	if lay.NumLevels < 3 {
		t.Fatalf("levels = %d, want >= 3", lay.NumLevels)
	}
	m, err := NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	from, into := lay.NumLevels, lay.NumLevels-1
	if err := m.Restructure([]LevelMerge{{From: from, Into: into}}, nil); err != nil {
		t.Fatal(err)
	}

	// An unrelated new subject at level 1.
	add := []rdf.Triple{{
		S: g.Dict.EncodeIRI("http://x/fresh"),
		P: g.Dict.EncodeIRI("http://x/p0"),
		O: g.Dict.EncodeIRI("http://x/o0"),
	}}
	if err := m.Apply(add, nil); err != nil {
		t.Fatal(err)
	}
	for _, key := range lay.SubPartitions() {
		if key.Level == from {
			t.Fatalf("data batch resurrected merged level %d (%v)", from, key)
		}
	}
	if got := lay.PhysLevel(from); got != into {
		t.Errorf("PhysLevel(%d) = %d after data batch, want %d", from, got, into)
	}
}

func TestLevelMapAndJoinsPersistAcrossReload(t *testing.T) {
	g := randomGraph(24, 80, 5)
	lay := rebuild(t, g)
	m, err := NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	p0 := g.Dict.LookupIRI("http://x/p0")
	p1 := g.Dict.LookupIRI("http://x/p1")
	key := JoinKey{PropA: p0, PropB: p1, RoleA: JoinSubject, RoleB: JoinSubject}
	err = m.Restructure(
		[]LevelMerge{{From: lay.NumLevels, Into: lay.NumLevels - 1}},
		func(l *Layout) (map[JoinKey]*JoinReduction, error) {
			red, err := l.BuildJoinReduction(key)
			if err != nil {
				return nil, err
			}
			return map[JoinKey]*JoinReduction{key: red}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := lay.SaveDict(); err != nil {
		t.Fatal(err)
	}

	reloaded, err := Load(lay.FS(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded.LevelMap) != len(lay.LevelMap) {
		t.Fatalf("reloaded LevelMap %v, want %v", reloaded.LevelMap, lay.LevelMap)
	}
	for l, p := range lay.LevelMap {
		if reloaded.LevelMap[l] != p {
			t.Fatalf("reloaded LevelMap[%d] = %d, want %d", l, reloaded.LevelMap[l], p)
		}
	}
	want := lay.JoinReductions()[key]
	got := reloaded.JoinReductions()[key]
	if want == nil {
		t.Fatal("reduction not installed")
	}
	if got == nil {
		t.Fatal("reduction not reloaded")
	}
	if len(got.Pruned) != len(want.Pruned) {
		t.Fatalf("reloaded pruned set %d entries, want %d", len(got.Pruned), len(want.Pruned))
	}
	for sk := range want.Pruned {
		if !got.Pruned[sk] {
			t.Fatalf("reloaded pruned set misses %v", sk)
		}
	}
	// The signature folds the reductions in, so a reload must agree with
	// the in-memory layout (cursors compare signatures across restarts).
	if got, want := reloaded.Signature(), lay.Signature(); got != want {
		t.Fatalf("reloaded signature %016x, want %016x", got, want)
	}
	// Rewriting a joined property invalidates its reduction in memory,
	// and the now-stale joins file must be dropped on the next load
	// rather than trusted against the changed data.
	m2, err := NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	add := []rdf.Triple{{
		S: g.Dict.EncodeIRI("http://x/post"),
		P: p1,
		O: g.Dict.EncodeIRI("http://x/o2"),
	}}
	if err := m2.Apply(add, nil); err != nil {
		t.Fatal(err)
	}
	if lay.JoinReductions()[key] != nil {
		t.Fatal("rewriting a joined property did not invalidate its reduction")
	}
	if err := lay.SaveDict(); err != nil {
		t.Fatal(err)
	}
	stale, err := Load(lay.FS(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale.JoinReductions()) != 0 {
		t.Fatal("stale joins file survived a reload after the data changed")
	}
}

func TestJoinReductionSoundness(t *testing.T) {
	g := randomGraph(25, 100, 5)
	lay := rebuild(t, g)
	p0 := g.Dict.LookupIRI("http://x/p0")
	p1 := g.Dict.LookupIRI("http://x/p1")
	for _, key := range []JoinKey{
		{PropA: p0, PropB: p1, RoleA: JoinSubject, RoleB: JoinSubject},
		{PropA: p0, PropB: p1, RoleA: JoinObject, RoleB: JoinSubject},
		{PropA: p1, PropB: p0, RoleA: JoinSubject, RoleB: JoinObject},
	} {
		red, err := lay.BuildJoinReduction(key)
		if err != nil {
			t.Fatal(err)
		}
		// Exact join-value sets: a pruned sub-partition must truly share
		// no value with PropB's side. Bloom false positives may retain a
		// useless sub-partition, never prune a useful one.
		bVals := make(map[rdf.ID]bool)
		for _, sk := range lay.SubPartitions() {
			if sk.Prop != key.PropB {
				continue
			}
			pairs, err := lay.ReadSubPartition(sk)
			if err != nil {
				t.Fatal(err)
			}
			for _, pr := range pairs {
				if key.RoleB == JoinSubject {
					bVals[pr.S] = true
				} else {
					bVals[pr.O] = true
				}
			}
		}
		for sk := range red.Pruned {
			if sk.Prop != key.PropA {
				t.Fatalf("%v pruned a sub-partition of the wrong property: %v", key, sk)
			}
			pairs, err := lay.ReadSubPartition(sk)
			if err != nil {
				t.Fatal(err)
			}
			for _, pr := range pairs {
				v := pr.S
				if key.RoleA == JoinObject {
					v = pr.O
				}
				if bVals[v] {
					t.Fatalf("%v pruned %v which shares join value %d", key, sk, v)
				}
			}
		}
	}
}

// TestRestructureSnapshotIsolation: an advisor apply is an epoch publish
// like any update — pinned snapshots keep their rows and their levels.
func TestRestructureSnapshotIsolation(t *testing.T) {
	g := randomGraph(26, 80, 5)
	lay := rebuild(t, g)
	store := NewStore(lay)
	m, err := NewStoreMaintainer(store)
	if err != nil {
		t.Fatal(err)
	}

	pinned, release := store.Pin()
	defer release()
	before := readAll(t, pinned)
	beforeRows := rowMultiset(t, pinned)

	p0 := g.Dict.LookupIRI("http://x/p0")
	p1 := g.Dict.LookupIRI("http://x/p1")
	key := JoinKey{PropA: p0, PropB: p1, RoleA: JoinSubject, RoleB: JoinSubject}
	err = m.Restructure(
		[]LevelMerge{{From: lay.NumLevels, Into: lay.NumLevels - 1}},
		func(l *Layout) (map[JoinKey]*JoinReduction, error) {
			red, err := l.BuildJoinReduction(key)
			if err != nil {
				return nil, err
			}
			return map[JoinKey]*JoinReduction{key: red}, nil
		})
	if err != nil {
		t.Fatal(err)
	}

	if got := store.Epoch(); got != 1 {
		t.Fatalf("store epoch = %d, want 1", got)
	}
	if pinned.Epoch() != 0 {
		t.Fatalf("pinned epoch = %d, want 0", pinned.Epoch())
	}
	if pinned.LevelMap != nil {
		t.Fatal("merge leaked into the pinned snapshot's LevelMap")
	}
	if len(pinned.JoinReductions()) != 0 {
		t.Fatal("join reductions leaked into the pinned snapshot")
	}
	after := readAll(t, pinned)
	for k, want := range before {
		if !pairsEqual(after[k], want) {
			t.Fatalf("pinned snapshot rows changed for %v", k)
		}
	}
	cur := store.Current()
	sameRows(t, rowMultiset(t, cur), beforeRows, "published epoch")
	if cur.Signature() == pinned.Signature() {
		t.Fatal("restructure did not change the layout signature")
	}
}

// TestBloomRebuildNoFalseNegatives is the maintainer Bloom-rebuild
// contract: after batches rewrite sub-partitions (with concurrent pinned
// readers racing the publishes), every resident row is contained in its
// sub-partition's filters. Run under -race.
func TestBloomRebuildNoFalseNegatives(t *testing.T) {
	g := randomGraph(27, 60, 4)
	lay, err := Partition(g, Options{BuildBlooms: true})
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(lay)
	m, err := NewStoreMaintainer(store)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, release := store.Pin()
				for _, key := range snap.SubPartitions() {
					if _, err := snap.ReadSubPartition(key); err != nil {
						t.Errorf("pinned read %v: %v", key, err)
						release()
						return
					}
				}
				release()
			}
		}()
	}

	// Each batch gives an existing subject a new property, moving it to a
	// new CS and rewriting (rebuilding the filters of) its sub-partitions.
	for i := 0; i < 4; i++ {
		add := []rdf.Triple{{
			S: g.Dict.LookupIRI("http://x/s0"),
			P: g.Dict.EncodeIRI("http://x/extra" + string(rune('a'+i))),
			O: g.Dict.EncodeIRI("http://x/oX"),
		}}
		if err := m.Apply(add, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	cur := store.Current()
	if !cur.HasBlooms() {
		t.Fatal("published epoch lost its blooms")
	}
	for _, key := range cur.SubPartitions() {
		b := cur.Blooms(key)
		if b == nil {
			t.Fatalf("no filters for %v after rewrites", key)
		}
		pairs, err := cur.ReadSubPartition(key)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range pairs {
			if !b.Subjects.Contains(uint64(pr.S)) {
				t.Fatalf("%v: subject filter false negative for %d", key, pr.S)
			}
			if !b.Objects.Contains(uint64(pr.O)) {
				t.Fatalf("%v: object filter false negative for %d", key, pr.O)
			}
		}
	}
}
