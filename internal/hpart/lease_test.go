package hpart

import (
	"fmt"
	"testing"
	"time"

	"ping/internal/dfs"
	"ping/internal/rdf"
)

func leaseTestStore(t *testing.T) (*Store, *Maintainer, *rdf.Graph) {
	t.Helper()
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	for i := 0; i < 20; i++ {
		g.Add(iri(fmt.Sprintf("s%d", i)), iri("p0"), iri(fmt.Sprintf("o%d", i)))
	}
	lay, err := Partition(g, Options{FS: dfs.New(dfs.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(lay)
	m, err := NewStoreMaintainer(store)
	if err != nil {
		t.Fatal(err)
	}
	return store, m, g
}

// rewriteBatch adds one triple reusing an existing subject and property,
// forcing a rewrite (and retirement) of that sub-partition's file.
func rewriteBatch(g *rdf.Graph) []rdf.Triple {
	return []rdf.Triple{{
		S: g.Dict.EncodeIRI("s0"),
		P: g.Dict.EncodeIRI("p0"),
		O: g.Dict.EncodeIRI("oNew"),
	}}
}

// advance installs a fake clock and returns a function that moves it
// forward.
func advance(s *Store) func(d time.Duration) {
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })
	return func(d time.Duration) { now = now.Add(d) }
}

func TestLeasePinsEpochAcrossPublish(t *testing.T) {
	store, m, g := leaseTestStore(t)
	tick := advance(store)

	lease, leased := store.PinLease(time.Minute)
	if got := store.Stats(); got.ActiveLeases != 1 || got.PinnedQueries != 1 {
		t.Fatalf("after PinLease: %+v", got)
	}

	// Publish a new epoch rewriting the leased files; the lease must keep
	// them readable.
	if err := m.Apply(rewriteBatch(g), nil); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if st := store.Stats(); st.RetiredFiles == 0 {
		t.Fatal("publish retired no files despite rewrite")
	}
	lay, release, ok := lease.Acquire()
	if !ok || lay.Epoch() != leased.Epoch() {
		t.Fatalf("Acquire: ok=%v, want leased epoch %d", ok, leased.Epoch())
	}
	for _, k := range lay.SubPartitions() {
		if _, err := lay.ReadSubPartition(k); err != nil {
			t.Fatalf("leased snapshot lost %s: %v", k, err)
		}
	}
	release()
	tick(30 * time.Second)
	if !lease.Renew(time.Minute) {
		t.Fatal("renew of a live lease failed")
	}
	lease.Release()
	st := store.Stats()
	if st.ActiveLeases != 0 || st.PinnedQueries != 0 || st.RetiredFiles != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

// TestExpiredLeaseNeverBlocksGC is the acceptance property: once a
// lease's TTL lapses, the next GC pass reclaims the retired files even
// though the client never released it.
func TestExpiredLeaseNeverBlocksGC(t *testing.T) {
	store, m, g := leaseTestStore(t)
	tick := advance(store)

	lease, _ := store.PinLease(time.Minute)
	if err := m.Apply(rewriteBatch(g), nil); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if st := store.Stats(); st.RetiredFiles == 0 {
		t.Fatal("want retired files held by the lease")
	}

	tick(2 * time.Minute) // lease lapses
	st := store.Stats()   // Stats itself must reclaim
	if st.ActiveLeases != 0 {
		t.Fatalf("expired lease still active: %+v", st)
	}
	if st.PinnedQueries != 0 || st.PinnedEpochs != 0 {
		t.Fatalf("expired lease still pins an epoch: %+v", st)
	}
	if st.RetiredFiles != 0 {
		t.Fatalf("expired lease blocked GC: %+v", st)
	}
	if st.LeasesExpired != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", st.LeasesExpired)
	}

	// Everything about the dead lease now degrades gracefully.
	if lease.Valid() {
		t.Fatal("expired lease claims validity")
	}
	if _, _, ok := lease.Acquire(); ok {
		t.Fatal("expired lease acquired")
	}
	if lease.Renew(time.Hour) {
		t.Fatal("expired lease renewed")
	}
	lease.Release() // no-op, must not panic or corrupt counts
	if st := store.Stats(); st.PinnedQueries != 0 {
		t.Fatalf("release after expiry corrupted pins: %+v", st)
	}
}

// TestLeaseAcquireOutlivesExpiry: a run that acquired its lease before
// the TTL lapsed keeps its snapshot until the run's release, but the
// lease itself is gone afterwards.
func TestLeaseAcquireOutlivesExpiry(t *testing.T) {
	store, m, g := leaseTestStore(t)
	tick := advance(store)

	lease, leased := store.PinLease(time.Minute)
	lay, release, ok := lease.Acquire()
	if !ok {
		t.Fatal("acquire failed")
	}
	tick(2 * time.Minute)
	if err := m.Apply(rewriteBatch(g), nil); err != nil {
		t.Fatalf("apply: %v", err)
	}
	// The lease expired mid-run, but the run's own pin keeps the files.
	if lay.Epoch() != leased.Epoch() {
		t.Fatal("acquired snapshot changed")
	}
	for _, k := range lay.SubPartitions() {
		if _, err := lay.ReadSubPartition(k); err != nil {
			t.Fatalf("in-flight snapshot lost %s: %v", k, err)
		}
	}
	release()
	st := store.Stats()
	if st.PinnedQueries != 0 || st.RetiredFiles != 0 || st.ActiveLeases != 0 {
		t.Fatalf("after run release: %+v", st)
	}
}

func TestNilLeaseIsExpired(t *testing.T) {
	var l *Lease
	if l.Valid() {
		t.Fatal("nil lease valid")
	}
	if _, _, ok := l.Acquire(); ok {
		t.Fatal("nil lease acquired")
	}
	if l.Renew(time.Minute) {
		t.Fatal("nil lease renewed")
	}
	l.Release()
}

func TestSignatureTracksContent(t *testing.T) {
	store, m, g := leaseTestStore(t)
	before := store.Current().Signature()
	if before == 0 {
		t.Fatal("zero signature")
	}
	if again := store.Current().Signature(); again != before {
		t.Fatal("signature not stable")
	}
	if err := m.Apply(rewriteBatch(g), nil); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if after := store.Current().Signature(); after == before {
		t.Fatal("signature unchanged by an update batch")
	}
}
