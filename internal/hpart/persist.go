package hpart

import (
	"fmt"

	"ping/internal/columnar"
	"ping/internal/dfs"
	"ping/internal/rdf"
)

// Storage paths within the layout's file system. Sub-partitions live under
// levels/, indexes under indexes/, and meta.pcol ties everything together.
const (
	vpPath   = "indexes/vp.pcol"
	siPath   = "indexes/si.pcol"
	oiPath   = "indexes/oi.pcol"
	metaPath = "meta.pcol"
	dictPath = "dict.txt"
)

func splitSet(s LevelSet) (lo, hi uint32) {
	return uint32(s), uint32(uint64(s) >> 32)
}

func joinSet(lo, hi uint32) LevelSet {
	return LevelSet(uint64(lo) | uint64(hi)<<32)
}

// writeIndexes persists VP, SI, OI and the layout metadata. Indexes are
// stored as columnar files (IDs plus level bitmasks), the same storage
// substrate as the data, matching the paper's "indexes are stored in HDFS
// and loaded into Spark memory at query-processor startup" (§3.7).
func (l *Layout) writeIndexes() error {
	write := func(path string, cols [][]uint32) error {
		w, err := l.fs.Create(path)
		if err != nil {
			return fmt.Errorf("hpart: %w", err)
		}
		_, err = columnar.WriteColumns(w, cols, columnar.Auto)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("hpart: write %s: %w", path, err)
		}
		return nil
	}

	// VP: property → level set.
	vp := make([][]uint32, 3)
	for p, set := range l.VP {
		lo, hi := splitSet(set)
		vp[0] = append(vp[0], p)
		vp[1] = append(vp[1], lo)
		vp[2] = append(vp[2], hi)
	}
	if err := write(vpPath, vp); err != nil {
		return err
	}

	// SI: subject → level.
	si := make([][]uint32, 2)
	for s, level := range l.SI {
		si[0] = append(si[0], s)
		si[1] = append(si[1], uint32(level))
	}
	if err := write(siPath, si); err != nil {
		return err
	}

	// OI: object → level set.
	oi := make([][]uint32, 3)
	for o, set := range l.OI {
		lo, hi := splitSet(set)
		oi[0] = append(oi[0], o)
		oi[1] = append(oi[1], lo)
		oi[2] = append(oi[2], hi)
	}
	if err := write(oiPath, oi); err != nil {
		return err
	}

	// Meta: hierarchy depth, per-level triple counts (split 64-bit), the
	// sub-partition inventory with row counts and file generations
	// (column 6; layouts written before epoch support omit it and load
	// as all-zero generations), and the advisor's level remap as
	// (logical, physical) pairs (columns 7-8; absent on layouts written
	// before level merging, which load with an identity map).
	cols := 7
	if len(l.LevelMap) > 0 {
		cols = 9
	}
	meta := make([][]uint32, cols)
	meta[0] = []uint32{uint32(l.NumLevels)}
	for _, n := range l.LevelTriples {
		meta[1] = append(meta[1], uint32(uint64(n)&0xffffffff))
		meta[2] = append(meta[2], uint32(uint64(n)>>32))
	}
	for key, rows := range l.SubPartRows {
		meta[3] = append(meta[3], uint32(key.Level))
		meta[4] = append(meta[4], key.Prop)
		meta[5] = append(meta[5], uint32(rows))
		meta[6] = append(meta[6], uint32(l.gen[key]))
	}
	if cols == 9 {
		for logical, phys := range l.LevelMap {
			meta[7] = append(meta[7], uint32(logical))
			meta[8] = append(meta[8], uint32(phys))
		}
	}
	return write(metaPath, meta)
}

// SaveDict persists the term dictionary alongside the partitions so a
// layout directory is self-contained (used by the CLI tools).
func (l *Layout) SaveDict() error {
	w, err := l.fs.Create(dictPath)
	if err != nil {
		return fmt.Errorf("hpart: %w", err)
	}
	_, err = l.Dict.WriteTo(w)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("hpart: save dict: %w", err)
	}
	return nil
}

// Load reconstructs a Layout from a file system previously populated by
// Partition (and SaveDict, if dict is nil). The CS hierarchy itself is not
// persisted — query processing only needs the indexes — so
// Layout.Hierarchy is nil on loaded layouts.
func Load(fs *dfs.FS, dict *rdf.Dict) (*Layout, error) {
	read := func(path string, wantCols ...int) ([][]uint32, error) {
		r, err := fs.Open(path)
		if err != nil {
			return nil, fmt.Errorf("hpart: %w", err)
		}
		defer r.Close()
		cols, err := columnar.ReadColumns(r)
		if err != nil {
			return nil, fmt.Errorf("hpart: read %s: %w", path, err)
		}
		for _, want := range wantCols {
			if len(cols) == want {
				return cols, nil
			}
		}
		return nil, fmt.Errorf("hpart: %s has %d columns, want %v", path, len(cols), wantCols)
	}

	if dict == nil {
		r, err := fs.Open(dictPath)
		if err != nil {
			return nil, fmt.Errorf("hpart: no dictionary provided and %s missing: %w", dictPath, err)
		}
		dict, err = rdf.ReadDict(r)
		r.Close()
		if err != nil {
			return nil, err
		}
	}

	lay := &Layout{
		Dict:        dict,
		VP:          make(map[rdf.ID]LevelSet),
		SI:          make(map[rdf.ID]int),
		OI:          make(map[rdf.ID]LevelSet),
		SubPartRows: make(map[SubPartKey]int),
		gen:         make(map[SubPartKey]uint64),
		fs:          fs,
	}

	// Pre-epoch stores wrote 6 meta columns (no generations); their
	// sub-partitions all load as generation 0. Stores without an advisor
	// level remap wrote 7 (no LevelMap columns).
	meta, err := read(metaPath, 9, 7, 6)
	if err != nil {
		return nil, err
	}
	if len(meta[0]) != 1 {
		return nil, fmt.Errorf("hpart: malformed meta header")
	}
	lay.NumLevels = int(meta[0][0])
	if len(meta[1]) != len(meta[2]) || len(meta[1]) != lay.NumLevels {
		return nil, fmt.Errorf("hpart: malformed level counts")
	}
	lay.LevelTriples = make([]int64, lay.NumLevels)
	for i := range meta[1] {
		lay.LevelTriples[i] = int64(uint64(meta[1][i]) | uint64(meta[2][i])<<32)
	}
	if len(meta[3]) != len(meta[4]) || len(meta[3]) != len(meta[5]) {
		return nil, fmt.Errorf("hpart: malformed sub-partition inventory")
	}
	var stored int64
	for i := range meta[3] {
		key := SubPartKey{Level: int(meta[3][i]), Prop: meta[4][i]}
		lay.SubPartRows[key] = int(meta[5][i])
		if len(meta) > 6 && meta[6][i] != 0 {
			lay.gen[key] = uint64(meta[6][i])
		}
		if info, err := fs.Stat(lay.subPartFile(key)); err == nil {
			stored += info.Size
		}
	}
	lay.StoredBytes = stored
	if len(meta) > 8 {
		if len(meta[7]) != len(meta[8]) {
			return nil, fmt.Errorf("hpart: malformed level map")
		}
		lay.LevelMap = make(map[int]int, len(meta[7]))
		for i := range meta[7] {
			lay.LevelMap[int(meta[7][i])] = int(meta[8][i])
		}
	}

	vp, err := read(vpPath, 3)
	if err != nil {
		return nil, err
	}
	for i := range vp[0] {
		lay.VP[vp[0][i]] = joinSet(vp[1][i], vp[2][i])
	}
	si, err := read(siPath, 2)
	if err != nil {
		return nil, err
	}
	for i := range si[0] {
		lay.SI[si[0][i]] = int(si[1][i])
	}
	oi, err := read(oiPath, 3)
	if err != nil {
		return nil, err
	}
	for i := range oi[0] {
		lay.OI[oi[0][i]] = joinSet(oi[1][i], oi[2][i])
	}
	if err := lay.loadBlooms(); err != nil {
		return nil, err
	}
	if err := lay.loadJoinReductions(); err != nil {
		return nil, err
	}
	lay.refreshDictSnapshot()
	return lay, nil
}
