package hpart

import (
	"fmt"
	"maps"
	"sort"

	"ping/internal/columnar"
	"ping/internal/cs"
	"ping/internal/dfs"
	"ping/internal/rdf"
)

// Maintainer implements the incremental-update algorithm the paper leaves
// as future work (§6.1/§6.2): applying triple additions and removals to an
// existing hierarchical partitioning without rebuilding it.
//
// The subtlety the paper points out is that updates can reshape the CS
// hierarchy itself: adding triples can create a characteristic set that
// slots *below* existing ones, deepening their levels, and removals can
// flatten chains. The maintainer therefore keeps the live multiset of
// characteristic sets; after an update batch it recomputes the (small)
// hierarchy, diffs every CS's level, and moves exactly the affected
// subjects' rows between level files — instances whose CS and level are
// untouched cost nothing, matching the paper's "trivial for instances that
// have a CS already in the hierarchy" observation.
//
// All layout invariants (modularity, losslessness, index consistency) are
// preserved; the equivalence tests check the maintained layout against a
// from-scratch Partition of the updated graph.
//
// A maintainer runs in one of two modes. In-place (NewMaintainer): the
// layout is mutated directly and files are rewritten under their current
// names — correct only when no queries run concurrently. Snapshot
// (NewStoreMaintainer): every Apply clones the latest epoch, writes
// rewritten sub-partitions to fresh generation-suffixed files, and
// publishes the clone through the Store; concurrent queries keep reading
// their pinned epoch untouched. Either way a maintainer is a
// single-writer object: calls into one maintainer must be serialized by
// the caller.
type Maintainer struct {
	lay *Layout
	// store, when non-nil, switches the maintainer to snapshot mode.
	store *Store
	// csBySubject is the live CS of every subject.
	csBySubject map[rdf.ID]cs.Set
	// csCount is the number of subjects per CS key (the hierarchy is the
	// set of keys with count > 0).
	csCount map[string]int
	// csByKey resolves a CS key back to its set.
	csByKey map[string]cs.Set
	// oiCount tracks, per (object, level), how many triples reference the
	// object there — the exact refcounts behind the OI index.
	oiCount map[objLevel]int

	// genSeq is the highest generation ever written per sub-partition.
	// It never regresses — not even when a sub-partition is deleted and
	// later re-created — so a new file can never collide with a retired
	// generation some pinned epoch still reads.
	genSeq map[SubPartKey]uint64
	// retired / created accumulate, during one snapshot-mode Apply, the
	// files superseded by the batch and the files the batch wrote.
	retired []retiredFile
	created map[string]bool
}

type objLevel struct {
	obj   rdf.ID
	level int
}

// NewMaintainer builds a maintainer by scanning the layout's
// sub-partitions once (the layout is lossless, so the scan reconstructs
// every subject's CS and the object refcounts).
func NewMaintainer(lay *Layout) (*Maintainer, error) {
	m := &Maintainer{
		lay:         lay,
		csBySubject: make(map[rdf.ID]cs.Set),
		csCount:     make(map[string]int),
		csByKey:     make(map[string]cs.Set),
		oiCount:     make(map[objLevel]int),
		genSeq:      maps.Clone(lay.gen),
	}
	if m.genSeq == nil {
		m.genSeq = make(map[SubPartKey]uint64)
	}
	propsBySubject := make(map[rdf.ID][]rdf.ID)
	for _, key := range lay.SubPartitions() {
		pairs, err := lay.ReadSubPartition(key)
		if err != nil {
			return nil, err
		}
		for _, pr := range pairs {
			props := propsBySubject[pr.S]
			if len(props) == 0 || props[len(props)-1] != key.Prop {
				propsBySubject[pr.S] = append(props, key.Prop)
			}
			m.oiCount[objLevel{pr.O, key.Level}]++
		}
	}
	for s, props := range propsBySubject {
		set := cs.NewSet(props)
		m.csBySubject[s] = set
		key := set.Key()
		m.csCount[key]++
		m.csByKey[key] = set
	}
	return m, nil
}

// NewStoreMaintainer builds a snapshot-mode maintainer over the store's
// current epoch: every applied batch is built copy-on-write and
// published as a new epoch, leaving all older epochs readable for the
// queries pinning them. One maintainer per store; calls must be
// serialized by the caller. After a failed Apply the maintainer's
// internal bookkeeping may be inconsistent and it must be rebuilt with
// NewStoreMaintainer — the store itself is unaffected (the failed epoch
// is never published).
func NewStoreMaintainer(store *Store) (*Maintainer, error) {
	m, err := NewMaintainer(store.Current())
	if err != nil {
		return nil, err
	}
	m.store = store
	return m, nil
}

// Layout returns the maintained layout: in snapshot mode, the most
// recently published epoch's layout.
func (m *Maintainer) Layout() *Layout { return m.lay }

// AddTriples applies a batch of additions. Duplicate triples (already
// present) are ignored. The dictionary of the layout must already contain
// the triple terms (use Layout.Dict.Encode when building the batch).
func (m *Maintainer) AddTriples(ts []rdf.Triple) error {
	return m.apply(ts, nil)
}

// RemoveTriples applies a batch of removals. Absent triples are ignored.
func (m *Maintainer) RemoveTriples(ts []rdf.Triple) error {
	return m.apply(nil, ts)
}

// Apply applies additions and removals in one batch (removals first).
func (m *Maintainer) Apply(add, remove []rdf.Triple) error {
	return m.apply(add, remove)
}

// LevelMerge directs the advisor's HCS-style level collapse: every
// sub-partition of physical level From is rewritten into level Into
// (Into < From), and From's subjects move with their rows.
type LevelMerge struct {
	From int `json:"from"`
	Into int `json:"into"`
}

// Restructure applies an advisor recommendation as one batch: the level
// merges, then — via joinsFn, called on the post-merge layout — a fresh
// set of join reductions (joinsFn nil skips reductions; returning nil
// clears them). In snapshot mode the whole batch publishes as a single
// new epoch, so queries pinned to older epochs (including checkpointed
// cursors holding leases) are never disturbed; the data itself is
// unchanged, only its level placement and the reduction metadata.
func (m *Maintainer) Restructure(merges []LevelMerge, joinsFn func(*Layout) (map[JoinKey]*JoinReduction, error)) error {
	if len(merges) == 0 && joinsFn == nil {
		return nil
	}
	return m.mutate(func() error {
		if err := m.mergeLevels(merges); err != nil {
			return err
		}
		if joinsFn != nil {
			joins, err := joinsFn(m.lay)
			if err != nil {
				return err
			}
			m.lay.SetJoinReductions(joins)
			if err := m.lay.SaveJoinReductions(); err != nil {
				return err
			}
		}
		return nil
	})
}

// mergeLevels rewrites the sub-partitions of every merge source level
// into its target level and updates SI, OI, VP, the level remap, and the
// persisted indexes. The CS multiset is untouched — merging changes where
// a CS's rows live, not which CSs exist.
func (m *Maintainer) mergeLevels(merges []LevelMerge) error {
	if len(merges) == 0 {
		return nil
	}
	remap := make(map[int]int, len(merges))
	for _, mg := range merges {
		if mg.Into < 1 || mg.From <= mg.Into || mg.From > m.lay.NumLevels {
			return fmt.Errorf("hpart: bad level merge %d->%d", mg.From, mg.Into)
		}
		if _, dup := remap[mg.From]; dup {
			return fmt.Errorf("hpart: duplicate merge source level %d", mg.From)
		}
		remap[mg.From] = mg.Into
	}
	// Resolve chained merges (3->2 plus 2->1 is 3->1); From > Into makes
	// cycles impossible.
	resolve := func(l int) int {
		for {
			t, ok := remap[l]
			if !ok {
				return l
			}
			l = t
		}
	}

	// Move every source sub-partition's rows into its target, batching
	// appends so each target file is rewritten once. Source order is
	// sorted for deterministic generation assignment.
	var sources []SubPartKey
	for key := range m.lay.SubPartRows {
		if _, ok := remap[key.Level]; ok {
			sources = append(sources, key)
		}
	}
	sort.Slice(sources, func(i, j int) bool {
		if sources[i].Level != sources[j].Level {
			return sources[i].Level < sources[j].Level
		}
		return sources[i].Prop < sources[j].Prop
	})
	appends := make(map[SubPartKey][]Pair)
	var targets []SubPartKey
	for _, key := range sources {
		pairs, err := m.lay.ReadSubPartition(key)
		if err != nil {
			return err
		}
		to := resolve(key.Level)
		tkey := SubPartKey{Level: to, Prop: key.Prop}
		if _, seen := appends[tkey]; !seen {
			targets = append(targets, tkey)
		}
		appends[tkey] = append(appends[tkey], pairs...)
		for _, pr := range pairs {
			m.decOI(pr.O, key.Level)
			m.incOI(pr.O, to)
		}
		if err := m.writeSubPartition(key, nil); err != nil {
			return err
		}
	}
	for _, tkey := range targets {
		rows := appends[tkey]
		if m.lay.HasSubPartition(tkey) {
			existing, err := m.lay.ReadSubPartition(tkey)
			if err != nil {
				return err
			}
			rows = append(existing, rows...)
		}
		if err := m.writeSubPartition(tkey, rows); err != nil {
			return err
		}
	}

	// Subjects follow their rows.
	for s, level := range m.lay.SI {
		if _, ok := remap[level]; ok {
			m.lay.SI[s] = resolve(level)
		}
	}

	// Compose the new remap onto any existing one so future placements
	// (see placeSubjects) keep landing on the merged level.
	nl := make(map[int]int)
	for l := 1; l <= m.lay.NumLevels; l++ {
		if p := resolve(m.lay.PhysLevel(l)); p != l {
			nl[l] = p
		}
	}
	if len(nl) == 0 {
		nl = nil
	}
	m.lay.LevelMap = nl

	m.lay.sig.Store(0)
	m.recomputeLevelStats()
	return m.lay.writeIndexes()
}

// subjectDelta accumulates the per-subject changes of a batch.
type subjectDelta struct {
	addByProp map[rdf.ID][]rdf.ID // prop -> objects added
	delByProp map[rdf.ID][]rdf.ID // prop -> objects removed
}

func (m *Maintainer) apply(add, remove []rdf.Triple) error {
	if len(add) == 0 && len(remove) == 0 {
		return nil
	}
	return m.mutate(func() error { return m.applyBatch(add, remove) })
}

// mutate runs one mutation batch under the maintainer's mode discipline.
// In-place mode runs it directly against the layout. Snapshot mode runs
// it against a copy-on-write clone of the latest epoch — all file writes
// inside the batch go to fresh generation names, so nothing the clone
// does is observable until publish — and publishes the clone on success.
func (m *Maintainer) mutate(batch func() error) error {
	if m.store == nil {
		if err := batch(); err != nil {
			return err
		}
		m.lay.refreshDictSnapshot()
		return nil
	}
	base := m.lay
	m.lay = base.Clone()
	m.retired = nil
	m.created = make(map[string]bool)
	if err := batch(); err != nil {
		// The failed epoch is never published: concurrent queries are
		// unaffected. Delete the orphaned generation files it wrote and
		// restore the published layout. The maintainer's CS bookkeeping
		// may be torn; callers must rebuild it (see NewStoreMaintainer).
		for path := range m.created {
			if m.lay.fs.Exists(path) {
				_ = m.lay.fs.Remove(path)
			}
		}
		m.lay = base
		m.retired, m.created = nil, nil
		return err
	}
	// The batch may have interned new terms; re-pin the clone's dictionary
	// snapshot before it becomes visible so the new epoch can decode every
	// ID it stores while older epochs keep their shorter prefix.
	m.lay.refreshDictSnapshot()
	m.store.publish(m.lay, m.retired)
	m.retired, m.created = nil, nil
	return nil
}

func (m *Maintainer) applyBatch(add, remove []rdf.Triple) error {
	deltas := make(map[rdf.ID]*subjectDelta)
	delta := func(s rdf.ID) *subjectDelta {
		d := deltas[s]
		if d == nil {
			d = &subjectDelta{
				addByProp: make(map[rdf.ID][]rdf.ID),
				delByProp: make(map[rdf.ID][]rdf.ID),
			}
			deltas[s] = d
		}
		return d
	}
	for _, t := range remove {
		d := delta(t.S)
		d.delByProp[t.P] = append(d.delByProp[t.P], t.O)
	}
	for _, t := range add {
		d := delta(t.S)
		d.addByProp[t.P] = append(d.addByProp[t.P], t.O)
	}

	// Phase 1: pull every affected subject's current rows out of its old
	// level files and compute its updated property map.
	rowsBySubject := make(map[rdf.ID]map[rdf.ID][]rdf.ID) // subject -> prop -> objects
	if err := m.extractSubjects(deltas, rowsBySubject); err != nil {
		return err
	}

	// Phase 2: apply the deltas in memory.
	for s, d := range deltas {
		rows := rowsBySubject[s]
		if rows == nil {
			rows = make(map[rdf.ID][]rdf.ID)
			rowsBySubject[s] = rows
		}
		for p, objs := range d.delByProp {
			rows[p] = removeAll(rows[p], objs)
			if len(rows[p]) == 0 {
				delete(rows, p)
			}
		}
		for p, objs := range d.addByProp {
			rows[p] = addDistinct(rows[p], objs)
		}
	}

	// Phase 3: update the CS multiset with each subject's new CS.
	for s := range deltas {
		old, had := m.csBySubject[s]
		if had {
			key := old.Key()
			m.csCount[key]--
			if m.csCount[key] == 0 {
				delete(m.csCount, key)
				delete(m.csByKey, key)
			}
		}
		props := make([]rdf.ID, 0, len(rowsBySubject[s]))
		for p := range rowsBySubject[s] {
			props = append(props, p)
		}
		if len(props) == 0 {
			delete(m.csBySubject, s)
			continue
		}
		set := cs.NewSet(props)
		m.csBySubject[s] = set
		key := set.Key()
		m.csCount[key]++
		m.csByKey[key] = set
	}

	// Phase 4: recompute the hierarchy over the live CS multiset and diff
	// levels. CSs whose level changed drag *all* their subjects along —
	// this is the "new levels introduced" case the paper flags.
	sets := make([]cs.Set, 0, len(m.csByKey))
	for _, set := range m.csByKey {
		sets = append(sets, set)
	}
	h := cs.BuildFromSets(sets)
	if h.MaxLevel() > MaxLevels {
		return fmt.Errorf("hpart: updated hierarchy depth %d exceeds supported %d", h.MaxLevel(), MaxLevels)
	}
	// Prune advisor level merges the rebuilt hierarchy invalidated before
	// the shift detection and placement below consult the map.
	m.pruneLevelMap(h.MaxLevel())

	moved := make(map[rdf.ID]bool, len(deltas))
	for s := range deltas {
		moved[s] = true
	}
	// Batch all pure level shifts into one extraction pass: when a new CS
	// renumbers many existing CSs, every affected sub-partition file is
	// still read and rewritten exactly once.
	shiftKeys := make(map[SubPartKey]map[rdf.ID]bool)
	levelByKey := make(map[string]int, len(m.csByKey))
	for key, set := range m.csByKey {
		levelByKey[key] = h.LevelOf(set)
	}
	for s, set := range m.csBySubject {
		if moved[s] {
			continue
		}
		// SI holds physical levels; compare against the remapped level so
		// an advisor merge is not mistaken for a hierarchy shift (and
		// undone) on the next data batch.
		if newLevel := m.lay.PhysLevel(levelByKey[set.Key()]); newLevel != m.lay.SI[s] {
			moved[s] = true
			oldLevel := m.lay.SI[s]
			for _, p := range set.Props() {
				key := SubPartKey{Level: oldLevel, Prop: p}
				if shiftKeys[key] == nil {
					shiftKeys[key] = make(map[rdf.ID]bool)
				}
				shiftKeys[key][s] = true
			}
		}
	}
	if len(shiftKeys) > 0 {
		if err := m.extractFromFiles(shiftKeys, rowsBySubject); err != nil {
			return err
		}
	}

	// Phase 5: write every moved subject's rows at its new level and
	// refresh the indexes.
	if err := m.placeSubjects(h, moved, rowsBySubject); err != nil {
		return err
	}
	m.lay.Hierarchy = h
	m.lay.NumLevels = h.MaxLevel()
	m.recomputeLevelStats()
	return m.lay.writeIndexes()
}

// pruneLevelMap drops level-remap entries a hierarchy rebuild made
// meaningless (logical level no longer exists, or the mapping stopped
// pointing downward). Subjects already merged stay at their physical
// level; dropping an entry merely lets a future batch migrate them back
// to their logical level when it next touches them.
func (m *Maintainer) pruneLevelMap(maxLevel int) {
	lm := m.lay.LevelMap
	if len(lm) == 0 {
		return
	}
	for logical, phys := range lm {
		if logical > maxLevel || phys >= logical || phys < 1 {
			delete(lm, logical)
		}
	}
	if len(lm) == 0 {
		m.lay.LevelMap = nil
	}
}

// extractSubjects removes all rows of the delta'd subjects from their old
// level files, collecting them into rowsBySubject.
func (m *Maintainer) extractSubjects(deltas map[rdf.ID]*subjectDelta, rowsBySubject map[rdf.ID]map[rdf.ID][]rdf.ID) error {
	// Group work per sub-partition so each file is rewritten once.
	byKey := make(map[SubPartKey]map[rdf.ID]bool)
	for s := range deltas {
		set, ok := m.csBySubject[s]
		if !ok {
			continue
		}
		level := m.lay.SI[s]
		for _, p := range set.Props() {
			key := SubPartKey{Level: level, Prop: p}
			if byKey[key] == nil {
				byKey[key] = make(map[rdf.ID]bool)
			}
			byKey[key][s] = true
		}
	}
	return m.extractFromFiles(byKey, rowsBySubject)
}

// extractFromFiles rewrites each listed sub-partition without the listed
// subjects' rows, collecting the removed rows and maintaining the OI
// refcounts.
func (m *Maintainer) extractFromFiles(byKey map[SubPartKey]map[rdf.ID]bool, rowsBySubject map[rdf.ID]map[rdf.ID][]rdf.ID) error {
	for key, subjects := range byKey {
		if !m.lay.HasSubPartition(key) {
			continue
		}
		pairs, err := m.lay.ReadSubPartition(key)
		if err != nil {
			return err
		}
		kept := pairs[:0:0]
		for _, pr := range pairs {
			if subjects[pr.S] {
				rows := rowsBySubject[pr.S]
				if rows == nil {
					rows = make(map[rdf.ID][]rdf.ID)
					rowsBySubject[pr.S] = rows
				}
				rows[key.Prop] = append(rows[key.Prop], pr.O)
				m.decOI(pr.O, key.Level)
			} else {
				kept = append(kept, pr)
			}
		}
		if err := m.writeSubPartition(key, kept); err != nil {
			return err
		}
	}
	return nil
}

// placeSubjects writes the moved subjects' rows into their new level
// files, batching appends per sub-partition.
func (m *Maintainer) placeSubjects(h *cs.Hierarchy, moved map[rdf.ID]bool, rowsBySubject map[rdf.ID]map[rdf.ID][]rdf.ID) error {
	appends := make(map[SubPartKey][]Pair)
	for s := range moved {
		set, ok := m.csBySubject[s]
		if !ok {
			delete(m.lay.SI, s) // subject vanished entirely
			continue
		}
		// Place at the physical level (honouring advisor merges), never
		// the raw hierarchy level.
		level := m.lay.PhysLevel(h.LevelOf(set))
		m.lay.SI[s] = level
		for p, objs := range rowsBySubject[s] {
			key := SubPartKey{Level: level, Prop: p}
			for _, o := range objs {
				appends[key] = append(appends[key], Pair{S: s, O: o})
				m.incOI(o, level)
			}
		}
	}
	for key, rows := range appends {
		var existing []Pair
		if m.lay.HasSubPartition(key) {
			var err error
			existing, err = m.lay.ReadSubPartition(key)
			if err != nil {
				return err
			}
		}
		if err := m.writeSubPartition(key, append(existing, rows...)); err != nil {
			return err
		}
	}
	return nil
}

// writeSubPartition persists a sub-partition's rows and keeps
// SubPartRows, StoredBytes, and VP in sync. In-place mode rewrites (or
// removes) the file under its current name and invalidates the decoded
// cache only after the new contents are committed — a concurrent cached
// read that decoded the old bytes then fails the generation-tagged put
// instead of resurrecting stale rows. Snapshot mode writes the next
// generation under a fresh name and retires the old file for the epoch
// GC, leaving pinned snapshots untouched.
func (m *Maintainer) writeSubPartition(key SubPartKey, rows []Pair) error {
	lay := m.lay
	oldGen := lay.gen[key]
	oldPath := lay.subPartFile(key)
	oldExists := false
	if info, err := lay.fs.Stat(oldPath); err == nil {
		lay.StoredBytes -= info.Size
		oldExists = true
	}
	if len(rows) == 0 {
		delete(lay.SubPartRows, key)
		delete(lay.gen, key)
		if oldExists {
			if err := m.dropFile(key, oldGen, oldPath); err != nil {
				return err
			}
		}
		if lay.blooms != nil {
			delete(lay.blooms, key)
			if lay.fs.Exists(bloomPath(key)) {
				if err := lay.fs.Remove(bloomPath(key)); err != nil {
					return fmt.Errorf("hpart: %w", err)
				}
			}
		}
		lay.invalidateJoins(key.Prop)
		m.refreshVP(key.Prop)
		return nil
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].S != rows[j].S {
			return rows[i].S < rows[j].S
		}
		return rows[i].O < rows[j].O
	})
	scol := make([]uint32, len(rows))
	ocol := make([]uint32, len(rows))
	for i, pr := range rows {
		scol[i] = pr.S
		ocol[i] = pr.O
	}
	path := oldPath
	if m.store != nil {
		next := m.genSeq[key]
		if oldGen > next {
			next = oldGen
		}
		next++
		m.genSeq[key] = next
		lay.gen[key] = next
		path = dfs.GenPath(subPartPath(key), next)
	}
	w, err := lay.fs.Create(path)
	if err != nil {
		return fmt.Errorf("hpart: %w", err)
	}
	n, err := columnar.WriteColumns(w, [][]uint32{scol, ocol}, columnar.Plain)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("hpart: rewrite %s: %w", key, err)
	}
	if m.store != nil {
		m.created[path] = true
		if oldExists {
			if err := m.dropFile(key, oldGen, oldPath); err != nil {
				return err
			}
		}
	}
	lay.StoredBytes += n
	lay.SubPartRows[key] = len(rows)
	if lay.blooms != nil {
		// Bloom filters cannot delete, so a rewrite rebuilds the filter.
		b := buildBlooms(rows)
		lay.blooms[key] = b
		if err := lay.writeBlooms(key, b); err != nil {
			return err
		}
	}
	if m.store == nil {
		// In-place rewrite: evict the cached decode now that the new
		// contents are live.
		lay.invalidateSubPart(key)
	}
	lay.invalidateJoins(key.Prop)
	m.refreshVP(key.Prop)
	return nil
}

// dropFile disposes of a superseded generation file. Snapshot mode
// retires it for the epoch GC — unless it was created by the current
// (unpublished) batch, in which case no epoch ever saw it and it is
// deleted immediately. In-place mode removes it and evicts its cache
// slot.
func (m *Maintainer) dropFile(key SubPartKey, gen uint64, path string) error {
	if m.store != nil {
		if !m.created[path] {
			m.retired = append(m.retired, retiredFile{path: path, key: key, gen: gen})
			return nil
		}
		delete(m.created, path)
	}
	if m.lay.fs.Exists(path) {
		if err := m.lay.fs.Remove(path); err != nil {
			return fmt.Errorf("hpart: %w", err)
		}
	}
	if c := m.lay.subPartCache(); c != nil {
		c.invalidate(cacheKey{key: key, gen: gen})
	}
	return nil
}

// refreshVP recomputes one property's VP entry from the sub-partition
// inventory.
func (m *Maintainer) refreshVP(p rdf.ID) {
	var set LevelSet
	for key := range m.lay.SubPartRows {
		if key.Prop == p {
			set = set.Add(key.Level)
		}
	}
	if set.Empty() {
		delete(m.lay.VP, p)
	} else {
		m.lay.VP[p] = set
	}
}

func (m *Maintainer) incOI(o rdf.ID, level int) {
	k := objLevel{o, level}
	m.oiCount[k]++
	if m.oiCount[k] == 1 {
		m.lay.OI[o] = m.lay.OI[o].Add(level)
	}
}

func (m *Maintainer) decOI(o rdf.ID, level int) {
	k := objLevel{o, level}
	m.oiCount[k]--
	if m.oiCount[k] <= 0 {
		delete(m.oiCount, k)
		set := m.lay.OI[o] &^ (1 << (level - 1))
		if set.Empty() {
			delete(m.lay.OI, o)
		} else {
			m.lay.OI[o] = set
		}
	}
}

// recomputeLevelStats refreshes LevelTriples from the inventory.
func (m *Maintainer) recomputeLevelStats() {
	counts := make([]int64, m.lay.NumLevels)
	for key, rows := range m.lay.SubPartRows {
		if key.Level >= 1 && key.Level <= m.lay.NumLevels {
			counts[key.Level-1] += int64(rows)
		}
	}
	m.lay.LevelTriples = counts
}

// removeAll returns objs minus the removals (each removal deletes one
// occurrence; sub-partitions hold sets, so one is all there is).
func removeAll(objs, removals []rdf.ID) []rdf.ID {
	drop := make(map[rdf.ID]bool, len(removals))
	for _, o := range removals {
		drop[o] = true
	}
	out := objs[:0:0]
	for _, o := range objs {
		if !drop[o] {
			out = append(out, o)
		}
	}
	return out
}

// addDistinct appends additions not already present.
func addDistinct(objs, additions []rdf.ID) []rdf.ID {
	have := make(map[rdf.ID]bool, len(objs))
	for _, o := range objs {
		have[o] = true
	}
	for _, o := range additions {
		if !have[o] {
			have[o] = true
			objs = append(objs, o)
		}
	}
	return objs
}
