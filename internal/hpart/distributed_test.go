package hpart

import (
	"testing"

	"ping/internal/dataflow"
	"ping/internal/rdf"
)

// TestDistributedEquivalentToSequential: the dataflow partitioner must
// produce a layout identical (up to row order inside files) to the
// sequential Algorithm 1.
func TestDistributedEquivalentToSequential(t *testing.T) {
	ctx := dataflow.NewContext(4)
	for seed := int64(0); seed < 4; seed++ {
		g := randomGraph(seed, 150, 6)
		seq, err := Partition(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dist, err := PartitionDistributed(g, ctx, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if dist.NumLevels != seq.NumLevels {
			t.Fatalf("seed %d: levels %d != %d", seed, dist.NumLevels, seq.NumLevels)
		}
		if len(dist.SubPartRows) != len(seq.SubPartRows) {
			t.Fatalf("seed %d: %d sub-partitions != %d", seed, len(dist.SubPartRows), len(seq.SubPartRows))
		}
		for key, rows := range seq.SubPartRows {
			if dist.SubPartRows[key] != rows {
				t.Fatalf("seed %d: SubPartRows[%v] = %d, want %d", seed, key, dist.SubPartRows[key], rows)
			}
			// Row sets must match.
			sp, err := seq.ReadSubPartition(key)
			if err != nil {
				t.Fatal(err)
			}
			dp, err := dist.ReadSubPartition(key)
			if err != nil {
				t.Fatal(err)
			}
			set := make(map[Pair]bool, len(sp))
			for _, pr := range sp {
				set[pr] = true
			}
			for _, pr := range dp {
				if !set[pr] {
					t.Fatalf("seed %d: %v has extra row %v", seed, key, pr)
				}
			}
		}
		for s, l := range seq.SI {
			if dist.SI[s] != l {
				t.Fatalf("seed %d: SI[%d] = %d, want %d", seed, s, dist.SI[s], l)
			}
		}
		for p, set := range seq.VP {
			if dist.VP[p] != set {
				t.Fatalf("seed %d: VP[%d] = %v, want %v", seed, p, dist.VP[p], set)
			}
		}
		for o, set := range seq.OI {
			if dist.OI[o] != set {
				t.Fatalf("seed %d: OI[%d] = %v, want %v", seed, o, dist.OI[o], set)
			}
		}
		for i := range seq.LevelTriples {
			if dist.LevelTriples[i] != seq.LevelTriples[i] {
				t.Fatalf("seed %d: LevelTriples[%d] = %d, want %d",
					seed, i, dist.LevelTriples[i], seq.LevelTriples[i])
			}
		}
	}
}

func TestDistributedRunsStagesOnCluster(t *testing.T) {
	ctx := dataflow.NewContext(4)
	ctx.ResetMetrics()
	g := randomGraph(9, 200, 5)
	if _, err := PartitionDistributed(g, ctx, Options{}); err != nil {
		t.Fatal(err)
	}
	m := ctx.Metrics()
	if m.Stages < 5 {
		t.Errorf("only %d dataflow stages ran", m.Stages)
	}
	if m.RowsShuffled == 0 {
		t.Error("no shuffle recorded — the job did not run distributed")
	}
}

func TestDistributedWithBloomsAndNilContext(t *testing.T) {
	g := randomGraph(11, 80, 4)
	lay, err := PartitionDistributed(g, nil, Options{BuildBlooms: true})
	if err != nil {
		t.Fatal(err)
	}
	if !lay.HasBlooms() {
		t.Error("blooms not built by distributed partitioner")
	}
	// Spot check: a stored pair passes its filters.
	for _, key := range lay.SubPartitions() {
		pairs, err := lay.ReadSubPartition(key)
		if err != nil {
			t.Fatal(err)
		}
		b := lay.Blooms(key)
		if b == nil {
			t.Fatalf("no blooms for %v", key)
		}
		for _, pr := range pairs {
			if !b.Subjects.Contains(uint64(pr.S)) || !b.Objects.Contains(uint64(pr.O)) {
				t.Fatalf("%v: filter missing stored row", key)
			}
		}
		break
	}
}

func TestDistributedEmptyGraph(t *testing.T) {
	lay, err := PartitionDistributed(rdf.NewGraph(), dataflow.NewContext(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumLevels != 0 || lay.TotalTriples() != 0 {
		t.Errorf("empty graph: levels=%d triples=%d", lay.NumLevels, lay.TotalTriples())
	}
}
