// Epoch-based snapshot isolation between queries and maintenance.
//
// A Store publishes immutable Layout snapshots ("epochs") through an
// atomic pointer. Queries pin the current snapshot for their whole run
// and read exclusively from it — its index maps are never mutated and
// its sub-partition files are never rewritten in place, so a query
// racing an update batch still satisfies the paper's Lemma 4.4: every
// delivered PQA step is a sound subset of the pinned epoch's exact
// answer. The maintainer builds the next epoch copy-on-write (Clone +
// generation-suffixed file writes) off to the side and publishes it with
// a single pointer swap; readers never block on writers and writers
// never block on readers.
//
// Superseded generation files are retired, not deleted: a retired file
// is still readable by every epoch older than the publish that retired
// it. Per-epoch pin refcounts determine when no such epoch survives, at
// which point the garbage collector removes the file (and purges its
// decoded-cache slot).
package hpart

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// retiredFile is a generation file superseded by an epoch transition:
// readable only by snapshots with epoch < asOf.
type retiredFile struct {
	path string
	key  SubPartKey
	gen  uint64
	// asOf is the epoch whose publish retired the file (filled in by
	// Store.publish).
	asOf uint64
}

// Store mediates concurrent access to a partitioned dataset: queries pin
// immutable snapshots while a single maintainer publishes new epochs.
// All methods are safe for concurrent use; writing is single-writer
// (one Maintainer per Store — see NewStoreMaintainer).
type Store struct {
	cur atomic.Pointer[Layout]

	// mu guards the pin/retire/GC bookkeeping below. It is held only
	// for pointer swaps and refcount arithmetic — never across file I/O
	// on the query or maintenance path — so pinning stays O(1) and
	// publish cannot stall readers.
	mu sync.Mutex
	// pins counts in-flight queries per epoch (only epochs with a
	// positive count are present).
	pins map[uint64]int
	// retired holds generation files awaiting GC.
	retired []retiredFile
	// filesRemoved counts generation files deleted by the GC.
	filesRemoved int64

	// leases holds the TTL-bounded pins of hibernated cursors (see
	// lease.go); leaseSeq hands out their ids and leasesExpired counts
	// the ones the TTL reclaimed.
	leases        map[uint64]*leaseEntry
	leaseSeq      uint64
	leasesExpired int64
	// nowFn overrides the time source for lease expiry (tests only).
	nowFn func() time.Time
}

// NewStore wraps a layout as epoch 0 of a snapshot store. The layout
// must not be mutated directly afterwards; route all updates through a
// maintainer created with NewStoreMaintainer.
func NewStore(lay *Layout) *Store {
	s := &Store{pins: make(map[uint64]int), leases: make(map[uint64]*leaseEntry)}
	s.cur.Store(lay)
	return s
}

// Current returns the latest published snapshot without pinning it.
// Suitable for introspection; queries should use Pin so the epoch GC
// keeps their files alive.
func (s *Store) Current() *Layout { return s.cur.Load() }

// Epoch returns the latest published epoch number.
func (s *Store) Epoch() uint64 { return s.cur.Load().epoch }

// Pin returns the current snapshot and a release function. Between Pin
// and release the snapshot's sub-partition files are guaranteed to stay
// on storage even if newer epochs rewrite or delete them. release is
// idempotent.
func (s *Store) Pin() (*Layout, func()) {
	s.mu.Lock()
	lay := s.cur.Load()
	s.pins[lay.epoch]++
	s.mu.Unlock()

	var once sync.Once
	release := func() {
		once.Do(func() {
			s.mu.Lock()
			s.unpinLocked(lay.epoch)
			s.collect()
			s.mu.Unlock()
		})
	}
	return lay, release
}

// publish installs next as the new current epoch. retired lists the
// generation files the transition superseded; they remain readable by
// older epochs until no query pins one.
func (s *Store) publish(next *Layout, retired []retiredFile) {
	s.mu.Lock()
	next.epoch = s.cur.Load().epoch + 1
	for i := range retired {
		retired[i].asOf = next.epoch
	}
	s.retired = append(s.retired, retired...)
	s.cur.Store(next)
	s.collect()
	s.mu.Unlock()
}

// collect deletes every retired file no pinned epoch can still read: a
// file retired as of epoch N is needed only by epochs < N, so it is
// dead once the oldest pinned epoch is >= N (or nothing is pinned at
// all — the current epoch never reads retired files). Expired leases
// are reclaimed first, so a hibernated cursor whose TTL lapsed can
// never hold the GC back. Caller holds mu.
func (s *Store) collect() {
	s.expireLocked(s.now())
	minPinned := uint64(math.MaxUint64)
	for e := range s.pins {
		if e < minPinned {
			minPinned = e
		}
	}
	cur := s.cur.Load()
	cache := cur.subPartCache()
	kept := s.retired[:0]
	for _, rf := range s.retired {
		if rf.asOf > minPinned {
			kept = append(kept, rf)
			continue
		}
		if cur.fs.Exists(rf.path) {
			// Best-effort: a failed remove leaks the file but cannot
			// affect correctness (no snapshot references it anymore).
			_ = cur.fs.Remove(rf.path)
		}
		if cache != nil {
			cache.purge(cacheKey{key: rf.key, gen: rf.gen})
		}
		s.filesRemoved++
	}
	// Zero the tail so dropped entries are not retained by the backing
	// array.
	for i := len(kept); i < len(s.retired); i++ {
		s.retired[i] = retiredFile{}
	}
	s.retired = kept
}

// StoreStats is a point-in-time view of the store's epoch machinery.
type StoreStats struct {
	// Epoch is the latest published epoch.
	Epoch uint64
	// PinnedQueries is the number of unreleased pins across all epochs.
	PinnedQueries int
	// PinnedEpochs is the number of distinct epochs still pinned.
	PinnedEpochs int
	// RetiredFiles is the number of superseded generation files
	// awaiting GC.
	RetiredFiles int
	// FilesRemoved is the cumulative number of files the GC deleted.
	FilesRemoved int64
	// ActiveLeases is the number of live TTL epoch leases (hibernated
	// cursors); their pins are included in PinnedQueries.
	ActiveLeases int
	// LeasesExpired is the cumulative number of leases the TTL
	// reclaimed.
	LeasesExpired int64
}

// Stats reports the store's current epoch and GC accounting. Expired
// leases are reclaimed before counting, so the report never shows a pin
// a lapsed TTL should have released.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.now())
	s.collect()
	st := StoreStats{
		Epoch:         s.cur.Load().epoch,
		PinnedEpochs:  len(s.pins),
		RetiredFiles:  len(s.retired),
		FilesRemoved:  s.filesRemoved,
		ActiveLeases:  len(s.leases),
		LeasesExpired: s.leasesExpired,
	}
	for _, n := range s.pins {
		st.PinnedQueries += n
	}
	return st
}
