package hpart

import (
	"context"
	"testing"

	"ping/internal/rdf"
)

// TestSubPartCacheHitMiss: the first cached read misses and loads from
// storage, the second hits and returns the same rows.
func TestSubPartCacheHitMiss(t *testing.T) {
	g := uniprotExample()
	lay, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lay.EnableSubPartCache(0)
	key := lay.SubPartitions()[0]

	p1, hit, err := lay.ReadSubPartitionCached(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first read reported a cache hit")
	}
	p2, hit, err := lay.ReadSubPartitionCached(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second read missed the cache")
	}
	r1, r2 := p1.Materialize(), p2.Materialize()
	if len(r1) != len(r2) {
		t.Fatalf("cached rows differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("row %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
	if lay.SubPartCacheLen() != 1 {
		t.Fatalf("cache holds %d entries, want 1", lay.SubPartCacheLen())
	}
}

// TestSubPartCacheNoCacheInstalled: without EnableSubPartCache the cached
// read degrades to a plain read.
func TestSubPartCacheNoCacheInstalled(t *testing.T) {
	g := uniprotExample()
	lay, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := lay.SubPartitions()[0]
	for i := 0; i < 2; i++ {
		_, hit, err := lay.ReadSubPartitionCached(context.Background(), key)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatal("hit reported with no cache installed")
		}
	}
	if lay.SubPartCacheLen() != 0 {
		t.Fatal("cache grew without being installed")
	}
}

// TestSubPartCacheLRUEviction: with capacity 2, touching a third key
// evicts the least recently used entry.
func TestSubPartCacheLRUEviction(t *testing.T) {
	g := randomGraph(7, 40, 4)
	lay, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := lay.SubPartitions()
	if len(keys) < 3 {
		t.Fatalf("need >=3 sub-partitions, got %d", len(keys))
	}
	lay.EnableSubPartCache(2)
	ctx := context.Background()

	read := func(k SubPartKey) bool {
		t.Helper()
		_, hit, err := lay.ReadSubPartitionCached(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	read(keys[0]) // cache: [0]
	read(keys[1]) // cache: [1 0]
	if !read(keys[0]) {
		t.Fatal("keys[0] evicted while cache below capacity")
	}
	read(keys[2]) // cache: [2 0]; keys[1] was LRU and is evicted
	if !read(keys[0]) {
		t.Fatal("recently used entry was evicted")
	}
	if read(keys[1]) {
		t.Fatal("LRU entry was not evicted")
	}
	if lay.SubPartCacheLen() != 2 {
		t.Fatalf("cache holds %d entries, want 2", lay.SubPartCacheLen())
	}
}

// TestSubPartCacheInvalidatedByMaintainer: a maintenance batch that
// rewrites a sub-partition must evict its cached rows, so the next
// cached read sees the new file contents.
func TestSubPartCacheInvalidatedByMaintainer(t *testing.T) {
	g := uniprotExample()
	lay, err := Partition(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lay.EnableSubPartCache(0)
	ctx := context.Background()

	// Warm the cache with every sub-partition.
	for _, k := range lay.SubPartitions() {
		if _, _, err := lay.ReadSubPartitionCached(ctx, k); err != nil {
			t.Fatal(err)
		}
	}

	m, err := NewMaintainer(lay)
	if err != nil {
		t.Fatal(err)
	}
	iri := rdf.NewIRI
	add := rdf.Triple{
		S: lay.Dict.Encode(iri("P26474")),
		P: lay.Dict.Encode(iri("occursIn")),
		O: lay.Dict.Encode(iri("Organism999")),
	}
	if err := m.AddTriples([]rdf.Triple{add}); err != nil {
		t.Fatal(err)
	}

	// Every sub-partition's cached rows must now agree with storage.
	for _, k := range lay.SubPartitions() {
		block, _, err := lay.ReadSubPartitionCached(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		cached := block.Materialize()
		direct, err := lay.ReadSubPartition(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(cached) != len(direct) {
			t.Fatalf("%v: cached %d rows, storage %d — stale cache", k, len(cached), len(direct))
		}
		seen := make(map[Pair]bool, len(direct))
		for _, pr := range direct {
			seen[pr] = true
		}
		for _, pr := range cached {
			if !seen[pr] {
				t.Fatalf("%v: cached row %v not in storage", k, pr)
			}
		}
	}
}
