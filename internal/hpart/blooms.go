package hpart

import (
	"fmt"

	"ping/internal/bloom"
)

// Per-sub-partition Bloom filters implement the paper's §6.2 proposal of
// "Bloom filters to identify levels with relevant answers": for a pattern
// with a constant subject or object, the processor can probe the filters
// of each candidate sub-partition and skip the ones that definitely do not
// contain the constant. The SI/OI indexes prune by term *globally* (does
// the term occur anywhere on this level?); the filters refine that to the
// specific property file, which matters when a term occurs on a level only
// under other properties. False positives merely load extra files; false
// negatives are impossible, so answers are unaffected.

// SubPartBlooms holds one sub-partition's subject and object filters.
type SubPartBlooms struct {
	Subjects *bloom.Filter
	Objects  *bloom.Filter
}

// bloomFalsePositiveRate is the target FP rate for sub-partition filters.
const bloomFalsePositiveRate = 0.01

func bloomPath(key SubPartKey) string {
	return fmt.Sprintf("blooms/L%02d_p%d.blm", key.Level, key.Prop)
}

// buildBlooms constructs the filters for one sub-partition's rows.
func buildBlooms(pairs []Pair) SubPartBlooms {
	sf := bloom.NewWithEstimates(uint64(len(pairs)+1), bloomFalsePositiveRate)
	of := bloom.NewWithEstimates(uint64(len(pairs)+1), bloomFalsePositiveRate)
	for _, pr := range pairs {
		sf.Add(uint64(pr.S))
		of.Add(uint64(pr.O))
	}
	return SubPartBlooms{Subjects: sf, Objects: of}
}

// writeBlooms persists one sub-partition's filters.
func (l *Layout) writeBlooms(key SubPartKey, b SubPartBlooms) error {
	w, err := l.fs.Create(bloomPath(key))
	if err != nil {
		return fmt.Errorf("hpart: %w", err)
	}
	if _, err := b.Subjects.WriteTo(w); err != nil {
		w.Close()
		return fmt.Errorf("hpart: write blooms %s: %w", key, err)
	}
	if _, err := b.Objects.WriteTo(w); err != nil {
		w.Close()
		return fmt.Errorf("hpart: write blooms %s: %w", key, err)
	}
	return w.Close()
}

// Blooms returns the filters of a sub-partition, or nil if the layout was
// built without them.
func (l *Layout) Blooms(key SubPartKey) *SubPartBlooms {
	if l.blooms == nil {
		return nil
	}
	if b, ok := l.blooms[key]; ok {
		return &b
	}
	return nil
}

// HasBlooms reports whether the layout carries sub-partition filters.
func (l *Layout) HasBlooms() bool { return len(l.blooms) > 0 }

// BuildBlooms constructs (or rebuilds) the filters for every
// sub-partition, persisting them alongside the data. It can be called on
// layouts partitioned without Options.BuildBlooms.
func (l *Layout) BuildBlooms() error {
	l.blooms = make(map[SubPartKey]SubPartBlooms, len(l.SubPartRows))
	for key := range l.SubPartRows {
		pairs, err := l.ReadSubPartition(key)
		if err != nil {
			return err
		}
		b := buildBlooms(pairs)
		l.blooms[key] = b
		if err := l.writeBlooms(key, b); err != nil {
			return err
		}
	}
	return nil
}

// loadBlooms restores persisted filters for the inventoried
// sub-partitions; missing files mean the layout has no filters.
func (l *Layout) loadBlooms() error {
	blooms := make(map[SubPartKey]SubPartBlooms, len(l.SubPartRows))
	for key := range l.SubPartRows {
		r, err := l.fs.Open(bloomPath(key))
		if err != nil {
			return nil // not built; leave l.blooms nil
		}
		sf, err := bloom.Read(r)
		if err != nil {
			r.Close()
			return fmt.Errorf("hpart: read blooms %s: %w", key, err)
		}
		of, err := bloom.Read(r)
		r.Close()
		if err != nil {
			return fmt.Errorf("hpart: read blooms %s: %w", key, err)
		}
		blooms[key] = SubPartBlooms{Subjects: sf, Objects: of}
	}
	l.blooms = blooms
	return nil
}
