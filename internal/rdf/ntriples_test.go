package rdf

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

const sampleNT = `# a comment
<http://x/Protein26474> <http://x/occursIn> <http://x/Organism7> .
<http://x/Protein26474> <http://x/hasKeyword> <http://x/Keyword546> .

<http://x/Protein43426> <http://x/reference> "Some article"@en .
_:b0 <http://x/weight> "3.14"^^<http://www.w3.org/2001/XMLSchema#double> .
<http://x/a> <http://x/says> "line1\nline2 \"quoted\"" .
`

func TestParseNTriples(t *testing.T) {
	g, err := ParseNTriples(strings.NewReader(sampleNT))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("parsed %d triples, want 5", g.Len())
	}
	// Spot-check the blank-node triple.
	found := false
	for _, tr := range g.Triples {
		s, o := g.Dict.Term(tr.S), g.Dict.Term(tr.O)
		if s.Kind == Blank && s.Value == "b0" {
			found = true
			if o.Datatype != "http://www.w3.org/2001/XMLSchema#double" || o.Value != "3.14" {
				t.Errorf("blank-node object = %+v", o)
			}
		}
	}
	if !found {
		t.Error("blank node triple not parsed")
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://x/a> <http://x/p>`,                   // truncated
		`<http://x/a> "lit" <http://x/o> .`,           // literal predicate
		`"lit" <http://x/p> <http://x/o> .`,           // literal subject
		`<http://x/a> <http://x/p> <http://x/o> junk`, // bad terminator
		`<http://x/a <http://x/p> <http://x/o> .`,     // unterminated IRI
		`<http://x/a> <http://x/p> "unterminated .`,   // unterminated literal
		`<http://x/a> <http://x/p> "v"^^<broken .`,    // unterminated datatype
		`<http://x/a> <http://x/p> "v"@ .`,            // empty language tag
		`<http://x/a> <http://x/p> _: .`,              // empty blank label
		`<http://x/a> <http://x/p> ! .`,               // junk term
		`_ <http://x/p> <http://x/o> .`,               // malformed blank
	}
	for _, line := range bad {
		if _, err := ParseNTriples(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParseNTriples(%q) succeeded, want error", line)
		}
	}
}

func randomTerm(rng *rand.Rand, pos int) Term {
	switch k := rng.Intn(4); {
	case pos == 1 || k == 0: // predicates must be IRIs
		return NewIRI(fmt.Sprintf("http://ex.org/res%d", rng.Intn(50)))
	case k == 1 && pos != 0: // literals only in object position
		vals := []string{"plain", "with \"quotes\"", "multi\nline", "tab\there", `back\slash`}
		return NewLiteral(vals[rng.Intn(len(vals))])
	case k == 2 && pos != 0:
		return NewLangLiteral("hello", "en")
	default:
		return NewBlank(fmt.Sprintf("b%d", rng.Intn(20)))
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGraph()
	for i := 0; i < 500; i++ {
		g.Add(randomTerm(rng, 0), randomTerm(rng, 1), randomTerm(rng, 2))
	}
	var buf bytes.Buffer
	n, err := WriteNTriples(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteNTriples reported %d bytes, wrote %d", n, buf.Len())
	}
	if sz := NTriplesSize(g); sz != n {
		t.Errorf("NTriplesSize = %d, want %d", sz, n)
	}
	g2, err := ParseNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round-trip length %d != %d", g2.Len(), g.Len())
	}
	for i, tr := range g.Triples {
		t2 := g2.Triples[i]
		for _, pair := range [][2]Term{
			{g.Dict.Term(tr.S), g2.Dict.Term(t2.S)},
			{g.Dict.Term(tr.P), g2.Dict.Term(t2.P)},
			{g.Dict.Term(tr.O), g2.Dict.Term(t2.O)},
		} {
			if pair[0] != pair[1] {
				t.Fatalf("triple %d differs: %+v vs %+v", i, pair[0], pair[1])
			}
		}
	}
}

func TestGraphDedup(t *testing.T) {
	g := NewGraph()
	a, p, b := NewIRI("a"), NewIRI("p"), NewIRI("b")
	g.Add(a, p, b)
	g.Add(a, p, b)
	g.Add(b, p, a)
	g.Dedup()
	if g.Len() != 2 {
		t.Fatalf("Dedup left %d triples, want 2", g.Len())
	}
	for i := 1; i < g.Len(); i++ {
		if !g.Triples[i-1].Less(g.Triples[i]) {
			t.Error("Dedup output not strictly sorted")
		}
	}
}

func TestGraphSubjectsProperties(t *testing.T) {
	g := NewGraph()
	g.Add(NewIRI("s1"), NewIRI("p1"), NewIRI("o1"))
	g.Add(NewIRI("s1"), NewIRI("p2"), NewIRI("o2"))
	g.Add(NewIRI("s2"), NewIRI("p1"), NewIRI("o1"))
	if got := len(g.Subjects()); got != 2 {
		t.Errorf("Subjects = %d, want 2", got)
	}
	if got := len(g.Properties()); got != 2 {
		t.Errorf("Properties = %d, want 2", got)
	}
}

func TestGraphClone(t *testing.T) {
	g := NewGraph()
	g.Add(NewIRI("s"), NewIRI("p"), NewIRI("o"))
	c := g.Clone()
	c.Add(NewIRI("s2"), NewIRI("p"), NewIRI("o"))
	if g.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: g=%d c=%d", g.Len(), c.Len())
	}
	if c.Dict != g.Dict {
		t.Error("clone must share the dictionary")
	}
}

func TestDedupEmpty(t *testing.T) {
	g := NewGraph()
	g.Dedup() // must not panic
	if g.Len() != 0 {
		t.Error("empty graph changed by Dedup")
	}
}
