package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseNTriples reads an N-Triples document into a fresh graph. Lines that
// are empty or comments (#) are skipped. The parser is permissive about
// surrounding whitespace but strict about term syntax, and fails with the
// offending line number on malformed input.
func ParseNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := ParseNTriplesInto(r, g); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseNTriplesInto reads an N-Triples document, appending triples to an
// existing graph (and interning terms into its dictionary).
func ParseNTriplesInto(r io.Reader, g *Graph) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, o, err := parseTripleLine(line)
		if err != nil {
			return fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		g.Add(s, p, o)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("rdf: line %d: %w", lineNo, err)
	}
	return nil
}

// parseTripleLine parses one "<s> <p> <o> ." statement.
func parseTripleLine(line string) (s, p, o Term, err error) {
	s, rest, err := parseTerm(line)
	if err != nil {
		return s, p, o, fmt.Errorf("subject: %w", err)
	}
	p, rest, err = parseTerm(rest)
	if err != nil {
		return s, p, o, fmt.Errorf("predicate: %w", err)
	}
	if p.Kind != IRI {
		return s, p, o, fmt.Errorf("predicate must be an IRI, got %s", p.Kind)
	}
	o, rest, err = parseTerm(rest)
	if err != nil {
		return s, p, o, fmt.Errorf("object: %w", err)
	}
	rest = strings.TrimSpace(rest)
	if rest != "." {
		return s, p, o, fmt.Errorf("expected terminating '.', got %q", rest)
	}
	if s.Kind == Literal {
		return s, p, o, fmt.Errorf("subject may not be a literal")
	}
	return s, p, o, nil
}

// parseTerm parses the first term of input and returns it with the
// remaining input. It accepts IRIs, blank nodes, literals (with optional
// language tag or datatype), and ?variables (for reuse by the SPARQL
// parser).
func parseTerm(input string) (Term, string, error) {
	in := strings.TrimLeft(input, " \t")
	if in == "" {
		return Term{}, in, fmt.Errorf("unexpected end of input")
	}
	switch in[0] {
	case '<':
		end := strings.IndexByte(in, '>')
		if end < 0 {
			return Term{}, in, fmt.Errorf("unterminated IRI %q", in)
		}
		return NewIRI(in[1:end]), in[end+1:], nil
	case '_':
		if len(in) < 2 || in[1] != ':' {
			return Term{}, in, fmt.Errorf("malformed blank node %q", in)
		}
		end := termEnd(in, 2)
		if end == 2 {
			return Term{}, in, fmt.Errorf("empty blank node label in %q", in)
		}
		return NewBlank(in[2:end]), in[end:], nil
	case '?', '$':
		end := termEnd(in, 1)
		if end == 1 {
			return Term{}, in, fmt.Errorf("empty variable name in %q", in)
		}
		return NewVar(in[1:end]), in[end:], nil
	case '"':
		return parseLiteral(in)
	default:
		return Term{}, in, fmt.Errorf("unexpected character %q", in[0])
	}
}

// termEnd returns the index of the first whitespace / statement delimiter
// at or after position start.
func termEnd(s string, start int) int {
	for i := start; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '.', ';', ',', ')', '}':
			return i
		}
	}
	return len(s)
}

// parseLiteral parses a quoted literal with optional @lang or ^^<datatype>.
func parseLiteral(in string) (Term, string, error) {
	// Find the closing quote, honoring backslash escapes.
	end := -1
	for i := 1; i < len(in); i++ {
		if in[i] == '\\' {
			i++
			continue
		}
		if in[i] == '"' {
			end = i
			break
		}
	}
	if end < 0 {
		return Term{}, in, fmt.Errorf("unterminated literal %q", in)
	}
	value := unescapeLiteral(in[1:end])
	rest := in[end+1:]
	switch {
	case strings.HasPrefix(rest, "@"):
		i := termEnd(rest, 1)
		if i == 1 {
			return Term{}, in, fmt.Errorf("empty language tag in %q", in)
		}
		return NewLangLiteral(value, rest[1:i]), rest[i:], nil
	case strings.HasPrefix(rest, "^^<"):
		i := strings.IndexByte(rest, '>')
		if i < 0 {
			return Term{}, in, fmt.Errorf("unterminated datatype IRI in %q", in)
		}
		return NewTypedLiteral(value, rest[3:i]), rest[i+1:], nil
	default:
		return NewLiteral(value), rest, nil
	}
}

// ParseTermString parses the first term of an N-Triples-syntax string and
// returns it along with the unconsumed remainder. It accepts IRIs, blank
// nodes, literals, and ?variables; the SPARQL parser reuses it for literal
// tokens.
func ParseTermString(input string) (Term, string, error) {
	return parseTerm(input)
}

// WriteNTriples serializes the graph in N-Triples syntax, one statement per
// line, in the stored triple order. It returns the number of bytes written,
// which the harness uses as the raw-dataset size for reduction factors.
func WriteNTriples(w io.Writer, g *Graph) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	for _, t := range g.Triples {
		k, err := fmt.Fprintf(bw, "%s %s %s .\n",
			g.Dict.TermString(t.S), g.Dict.TermString(t.P), g.Dict.TermString(t.O))
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// NTriplesSize returns the serialized N-Triples byte size of the graph
// without materializing the document.
func NTriplesSize(g *Graph) int64 {
	var n int64
	for _, t := range g.Triples {
		n += int64(len(g.Dict.TermString(t.S)) + len(g.Dict.TermString(t.P)) +
			len(g.Dict.TermString(t.O)) + 5) // 2 separators + " .\n"
	}
	return n
}
