package rdf

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestDictEncodeStable(t *testing.T) {
	d := NewDict()
	a := d.Encode(NewIRI("http://x/a"))
	b := d.Encode(NewIRI("http://x/b"))
	if a == b {
		t.Fatalf("distinct terms share ID %d", a)
	}
	if got := d.Encode(NewIRI("http://x/a")); got != a {
		t.Errorf("re-encode changed ID: %d != %d", got, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDictKindsDistinct(t *testing.T) {
	d := NewDict()
	ids := []ID{
		d.Encode(NewIRI("x")),
		d.Encode(NewLiteral("x")),
		d.Encode(NewBlank("x")),
	}
	seen := make(map[ID]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("terms of different kinds collided on ID %d", id)
		}
		seen[id] = true
	}
}

func TestDictLookup(t *testing.T) {
	d := NewDict()
	id := d.Encode(NewLiteral("v"))
	if got := d.Lookup(NewLiteral("v")); got != id {
		t.Errorf("Lookup = %d, want %d", got, id)
	}
	if got := d.Lookup(NewLiteral("absent")); got != NoID {
		t.Errorf("Lookup(absent) = %d, want NoID", got)
	}
	if got := d.LookupIRI("nope"); got != NoID {
		t.Errorf("LookupIRI(nope) = %d, want NoID", got)
	}
}

func TestDictTermRoundTrip(t *testing.T) {
	d := NewDict()
	terms := []Term{
		NewIRI("http://example.org/p"),
		NewLangLiteral("chat", "fr"),
		NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
		NewBlank("node0"),
	}
	for _, tm := range terms {
		id := d.Encode(tm)
		if got := d.Term(id); got != tm {
			t.Errorf("Term(%d) = %+v, want %+v", id, got, tm)
		}
	}
}

func TestDictSerializeRoundTrip(t *testing.T) {
	d := NewDict()
	for i := 0; i < 100; i++ {
		d.Encode(NewIRI(fmt.Sprintf("http://x/e%d", i)))
		d.Encode(NewLiteral(fmt.Sprintf("lit %d with \"quotes\"\nand newline", i)))
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("round-trip Len %d != %d", d2.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if d.Term(ID(i)) != d2.Term(ID(i)) {
			t.Fatalf("term %d differs: %+v vs %+v", i, d.Term(ID(i)), d2.Term(ID(i)))
		}
	}
}

func TestReadDictErrors(t *testing.T) {
	for _, in := range []string{"", "notanumber\n", "-3\n", "2\n<a>\n"} {
		if _, err := ReadDict(bytes.NewBufferString(in)); err == nil {
			t.Errorf("ReadDict(%q) succeeded, want error", in)
		}
	}
}

func TestDictConcurrentEncode(t *testing.T) {
	d := NewDict()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 200
	ids := make([][]ID, workers)
	for w := 0; w < workers; w++ {
		ids[w] = make([]ID, perWorker)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ids[w][i] = d.Encode(NewIRI(fmt.Sprintf("http://x/shared%d", i)))
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != perWorker {
		t.Fatalf("Len = %d, want %d", d.Len(), perWorker)
	}
	for w := 1; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got ID %d for term %d, worker 0 got %d", w, ids[w][i], i, ids[0][i])
			}
		}
	}
}
