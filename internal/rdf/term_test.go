package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x.org/a"), "<http://x.org/a>"},
		{NewBlank("b1"), "_:b1"},
		{NewVar("x"), "?x"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("bonjour", "fr"), `"bonjour"@fr`},
		{NewTypedLiteral("5", "http://www.w3.org/2001/XMLSchema#int"), `"5"^^<http://www.w3.org/2001/XMLSchema#int>`},
		{NewLiteral(`say "hi"`), `"say \"hi\""`},
		{NewLiteral("a\nb\tc\\d"), `"a\nb\tc\\d"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermKindString(t *testing.T) {
	kinds := map[TermKind]string{IRI: "iri", Literal: "literal", Blank: "blank", Variable: "variable"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("TermKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if got := TermKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind rendered as %q", got)
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return unescapeLiteral(escapeLiteral(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLiteralStringParseRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// Control characters other than the escaped set are not valid
		// N-Triples; restrict to the escapable space.
		if strings.ContainsAny(s, "\x00\x01\x02\x03\x04\x05\x06\x07\x08\x0b\x0c") {
			return true
		}
		lit := NewLiteral(s)
		got, rest, err := parseTerm(lit.String())
		return err == nil && rest == "" && got == lit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIsVarIsConcrete(t *testing.T) {
	if !NewVar("x").IsVar() || NewVar("x").IsConcrete() {
		t.Error("variable misclassified")
	}
	if NewIRI("a").IsVar() || !NewIRI("a").IsConcrete() {
		t.Error("IRI misclassified")
	}
}

func TestUnescapeUnknownEscapePassthrough(t *testing.T) {
	if got := unescapeLiteral(`a\qb`); got != `a\qb` {
		t.Errorf("unescapeLiteral(a\\qb) = %q", got)
	}
	if got := unescapeLiteral(`trailing\`); got != `trailing\` {
		t.Errorf("unescapeLiteral(trailing\\) = %q", got)
	}
}
