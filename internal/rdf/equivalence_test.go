package rdf

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestTurtleNTriplesEquivalence: any graph serialized as N-Triples must
// parse identically through both parsers (N-Triples is a subset of
// Turtle).
func TestTurtleNTriplesEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		for i := 0; i < 300; i++ {
			g.Add(randomTerm(rng, 0), randomTerm(rng, 1), randomTerm(rng, 2))
		}
		var buf bytes.Buffer
		if _, err := WriteNTriples(&buf, g); err != nil {
			t.Fatal(err)
		}
		doc := buf.Bytes()
		nt, err := ParseNTriples(bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		ttl, err := ParseTurtle(bytes.NewReader(doc))
		if err != nil {
			t.Fatalf("seed %d: turtle rejected valid N-Triples: %v", seed, err)
		}
		if nt.Len() != ttl.Len() {
			t.Fatalf("seed %d: N-Triples parsed %d, Turtle %d", seed, nt.Len(), ttl.Len())
		}
		for i := range nt.Triples {
			a, b := nt.Triples[i], ttl.Triples[i]
			if nt.Dict.TermString(a.S) != ttl.Dict.TermString(b.S) ||
				nt.Dict.TermString(a.P) != ttl.Dict.TermString(b.P) ||
				nt.Dict.TermString(a.O) != ttl.Dict.TermString(b.O) {
				t.Fatalf("seed %d: triple %d differs between parsers", seed, i)
			}
		}
	}
}

// TestDictIDsAreDense checks the dictionary invariant higher layers rely
// on for slice-indexed structures: IDs are handed out contiguously from 0.
func TestDictIDsAreDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDict()
	var max ID
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := d.Encode(randomTerm(rng, i%3))
		seen[id] = true
		if id > max {
			max = id
		}
	}
	if int(max)+1 != d.Len() {
		t.Fatalf("max ID %d but Len %d", max, d.Len())
	}
	for i := ID(0); i <= max; i++ {
		if !seen[i] {
			t.Fatalf("ID %d skipped", i)
		}
	}
}
