// Package rdf implements the RDF data model used throughout PING: terms
// (IRIs, literals, blank nodes), triples, dictionary encoding of terms to
// dense integer IDs, an in-memory graph, and an N-Triples reader/writer.
//
// All higher layers (partitioning, indexing, query evaluation) operate on
// dictionary-encoded triples — three uint32 IDs — which keeps partitions
// compact and makes joins cheap integer comparisons, mirroring the
// dictionary encoding used by the triple stores the paper builds on.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind distinguishes the three kinds of RDF terms plus variables, which
// appear only in query patterns, never in data.
type TermKind uint8

const (
	// IRI is a Uniform Resource Identifier reference.
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) literal value.
	Literal
	// Blank is a blank node.
	Blank
	// Variable is a query variable; it never occurs in stored data.
	Variable
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	case Variable:
		return "variable"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term or a query variable. Value holds the lexical form
// without surface decoration: the IRI string for IRIs, the label for blank
// nodes and variables, and the lexical value for literals. Literals may
// additionally carry a datatype IRI or a language tag.
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string // literal datatype IRI, "" if plain
	Lang     string // literal language tag, "" if none
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// NewTypedLiteral returns a literal with a datatype IRI.
func NewTypedLiteral(v, datatype string) Term {
	return Term{Kind: Literal, Value: v, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(v, lang string) Term {
	return Term{Kind: Literal, Value: v, Lang: lang}
}

// NewBlank returns a blank node with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewVar returns a query variable with the given name (without the '?').
func NewVar(name string) Term { return Term{Kind: Variable, Value: name} }

// IsVar reports whether the term is a query variable.
func (t Term) IsVar() bool { return t.Kind == Variable }

// IsConcrete reports whether the term is a data term (not a variable).
func (t Term) IsConcrete() bool { return t.Kind != Variable }

// String renders the term in N-Triples surface syntax (variables render as
// SPARQL ?name). The rendering is injective across kinds, so it doubles as
// the dictionary key.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Variable:
		return "?" + t.Value
	case Literal:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return fmt.Sprintf("!invalid(%d)", t.Kind)
	}
}

// escapeLiteral escapes the characters that N-Triples requires escaping
// inside literal quotes.
func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// unescapeLiteral reverses escapeLiteral. Unknown escapes are passed
// through verbatim to stay permissive with real-world dumps.
func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 >= len(s) {
			b.WriteByte(c)
			continue
		}
		i++
		switch s[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// RDFType is the IRI of the rdf:type property, which the paper treats as an
// ordinary property for partitioning purposes (§3.8).
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
