package rdf

import (
	"strings"
	"testing"
)

const sampleTTL = `# A Turtle document in the supported subset.
@prefix up: <http://uniprot.example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

up:Protein26474 a up:Protein ;
    up:occursIn up:Organism7 ;
    up:hasKeyword up:Keyword546 , up:Keyword99 .

up:Protein43426 up:reference "Some article"@en ;
    up:mass "3.14"^^xsd:double ;
    up:reviewed true ;
    up:citations 42 .

_:b0 up:interacts up:Protein26474 .
`

func TestParseTurtleBasics(t *testing.T) {
	g, err := ParseTurtle(strings.NewReader(sampleTTL))
	if err != nil {
		t.Fatal(err)
	}
	// 4 triples for Protein26474 (a + occursIn + 2 keywords),
	// 4 for Protein43426, 1 blank node.
	if g.Len() != 9 {
		t.Fatalf("parsed %d triples, want 9", g.Len())
	}
	find := func(pred string) []Triple {
		id := g.Dict.LookupIRI("http://uniprot.example.org/" + pred)
		var out []Triple
		for _, tr := range g.Triples {
			if tr.P == id {
				out = append(out, tr)
			}
		}
		return out
	}
	if got := find("hasKeyword"); len(got) != 2 {
		t.Errorf("comma list produced %d keyword triples, want 2", len(got))
	}
	// 'a' expands to rdf:type.
	typeID := g.Dict.LookupIRI(RDFType)
	found := false
	for _, tr := range g.Triples {
		if tr.P == typeID {
			found = true
			if g.Dict.Term(tr.O).Value != "http://uniprot.example.org/Protein" {
				t.Errorf("type object = %v", g.Dict.Term(tr.O))
			}
		}
	}
	if !found {
		t.Error("'a' triple missing")
	}
	// Typed literal via prefixed datatype.
	if got := find("mass"); len(got) != 1 {
		t.Fatal("mass triple missing")
	} else if o := g.Dict.Term(got[0].O); o.Datatype != "http://www.w3.org/2001/XMLSchema#double" {
		t.Errorf("mass datatype = %q", o.Datatype)
	}
	// Boolean and integer shorthand.
	if got := find("reviewed"); len(got) != 1 {
		t.Fatal("reviewed triple missing")
	} else if o := g.Dict.Term(got[0].O); o.Value != "true" || !strings.HasSuffix(o.Datatype, "boolean") {
		t.Errorf("boolean literal = %+v", o)
	}
	if got := find("citations"); len(got) != 1 {
		t.Fatal("citations triple missing")
	} else if o := g.Dict.Term(got[0].O); o.Value != "42" || !strings.HasSuffix(o.Datatype, "integer") {
		t.Errorf("integer literal = %+v", o)
	}
	// Blank node subject.
	if got := find("interacts"); len(got) != 1 {
		t.Fatal("blank node triple missing")
	} else if s := g.Dict.Term(got[0].S); s.Kind != Blank || s.Value != "b0" {
		t.Errorf("blank subject = %+v", s)
	}
}

func TestParseTurtleSparqlPrefixAndBase(t *testing.T) {
	g, err := ParseTurtle(strings.NewReader(`
PREFIX ex: <http://ex.org/>
BASE <http://base.org/>
ex:a ex:p <relative> .
`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("len = %d", g.Len())
	}
	if o := g.Dict.Term(g.Triples[0].O); o.Value != "http://base.org/relative" {
		t.Errorf("base not applied: %q", o.Value)
	}
}

func TestParseTurtleDanglingSemicolon(t *testing.T) {
	g, err := ParseTurtle(strings.NewReader(`
@prefix ex: <http://ex.org/> .
ex:s ex:p ex:o ; .
`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("len = %d, want 1", g.Len())
	}
}

func TestParseTurtleNTriplesCompatible(t *testing.T) {
	// Any N-Triples document is valid Turtle.
	g, err := ParseTurtle(strings.NewReader(sampleNT))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseNTriples(strings.NewReader(sampleNT))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != g2.Len() {
		t.Errorf("turtle parsed %d, ntriples %d", g.Len(), g2.Len())
	}
}

func TestParseTurtleErrors(t *testing.T) {
	bad := []string{
		`@prefix ex <http://x/> .`,                  // missing colon
		`@prefix ex: <http://x/>`,                   // missing dot
		`ex:s ex:p ex:o .`,                          // undeclared prefix
		`@prefix ex: <http://x/> . ex:s "l" ex:o .`, // literal predicate
		`@prefix ex: <http://x/> . "l" ex:p ex:o .`, // literal subject
		`@prefix ex: <http://x/> . ex:s ex:p ex:o`,  // missing final dot
		`@prefix ex: <http://x/> . ex:s ex:p <unterminated .`,
		`@prefix ex: <http://x/> . _: ex:p ex:o .`, // empty blank label
	}
	for _, in := range bad {
		if _, err := ParseTurtle(strings.NewReader(in)); err == nil {
			t.Errorf("ParseTurtle(%q) succeeded, want error", in)
		}
	}
}

func TestParseTurtleErrorHasLineNumber(t *testing.T) {
	_, err := ParseTurtle(strings.NewReader("@prefix ex: <http://x/> .\n\nex:s unknown:p ex:o .\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error = %v, want line 3", err)
	}
}

func TestDetectFormat(t *testing.T) {
	cases := map[string]string{
		"data.ttl":    "turtle",
		"DATA.TURTLE": "turtle",
		"data.nt":     "ntriples",
		"data":        "ntriples",
	}
	for name, want := range cases {
		if got := DetectFormat(name); got != want {
			t.Errorf("DetectFormat(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestParseFileDispatch(t *testing.T) {
	g, err := ParseFile(strings.NewReader(sampleTTL), "turtle")
	if err != nil || g.Len() == 0 {
		t.Errorf("turtle dispatch: %v", err)
	}
	g2, err := ParseFile(strings.NewReader(sampleNT), "ntriples")
	if err != nil || g2.Len() == 0 {
		t.Errorf("ntriples dispatch: %v", err)
	}
}
