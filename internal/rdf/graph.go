package rdf

import (
	"sort"
)

// Triple is a dictionary-encoded RDF triple: subject, property, object IDs.
type Triple struct {
	S, P, O ID
}

// SOPair is a (subject, object) row of a vertical partition — a triple
// whose predicate is implied by the table it is stored in.
type SOPair struct {
	S, O ID
}

// Less imposes SPO lexicographic order, used for canonical sorting.
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S < u.S
	}
	if t.P != u.P {
		return t.P < u.P
	}
	return t.O < u.O
}

// Graph is an in-memory RDF graph: a dictionary plus a triple list. The
// triple list may contain duplicates until Dedup is called; all PING
// pipelines deduplicate at load time.
type Graph struct {
	Dict    *Dict
	Triples []Triple
}

// NewGraph returns an empty graph with a fresh dictionary.
func NewGraph() *Graph {
	return &Graph{Dict: NewDict()}
}

// Add encodes the three terms and appends the triple.
func (g *Graph) Add(s, p, o Term) {
	g.Triples = append(g.Triples, Triple{
		S: g.Dict.Encode(s),
		P: g.Dict.Encode(p),
		O: g.Dict.Encode(o),
	})
}

// AddID appends an already-encoded triple.
func (g *Graph) AddID(t Triple) { g.Triples = append(g.Triples, t) }

// Len returns the number of stored triples (including duplicates, if any).
func (g *Graph) Len() int { return len(g.Triples) }

// Sort orders the triples in SPO order in place.
func (g *Graph) Sort() {
	sort.Slice(g.Triples, func(i, j int) bool { return g.Triples[i].Less(g.Triples[j]) })
}

// Dedup sorts the triple list and removes duplicates in place.
func (g *Graph) Dedup() {
	if len(g.Triples) == 0 {
		return
	}
	g.Sort()
	out := g.Triples[:1]
	for _, t := range g.Triples[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	g.Triples = out
}

// Subjects returns the distinct subject IDs, unordered.
func (g *Graph) Subjects() []ID {
	seen := make(map[ID]struct{})
	for _, t := range g.Triples {
		seen[t.S] = struct{}{}
	}
	out := make([]ID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	return out
}

// Properties returns the distinct property IDs, unordered.
func (g *Graph) Properties() []ID {
	seen := make(map[ID]struct{})
	for _, t := range g.Triples {
		seen[t.P] = struct{}{}
	}
	out := make([]ID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	return out
}

// Clone returns a deep copy of the triple list sharing the dictionary.
// Sharing is intentional: partitioning never mutates the dictionary's
// existing entries, and a shared dictionary keeps IDs comparable across
// the original graph and its partitions.
func (g *Graph) Clone() *Graph {
	ts := make([]Triple, len(g.Triples))
	copy(ts, g.Triples)
	return &Graph{Dict: g.Dict, Triples: ts}
}
