package rdf

import (
	"strings"
	"testing"
)

// FuzzParseNTriples checks the parser never panics and that everything it
// accepts round-trips through the writer.
func FuzzParseNTriples(f *testing.F) {
	seeds := []string{
		sampleNT,
		`<a> <b> <c> .`,
		`_:b <p> "lit"@en .`,
		`<s> <p> "x\"y\\z" .`,
		`<s> <p> "1"^^<http://www.w3.org/2001/XMLSchema#int> .`,
		`# comment only`,
		`<s> <p> `,
		`"bad" <p> <o> .`,
		strings.Repeat(`<s> <p> <o> .`+"\n", 5),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseNTriples(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must round-trip.
		var buf strings.Builder
		if _, err := WriteNTriples(&buf, g); err != nil {
			t.Fatalf("write after parse: %v", err)
		}
		g2, err := ParseNTriples(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput:\n%s", err, buf.String())
		}
		if g2.Len() != g.Len() {
			t.Fatalf("round trip changed triple count: %d -> %d", g.Len(), g2.Len())
		}
	})
}
