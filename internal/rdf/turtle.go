package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseTurtle reads a document in the Turtle subset most datasets use:
//
//	@prefix ns: <iri> .          (and SPARQL-style "PREFIX ns: <iri>")
//	@base <iri> .
//	ns:subj ns:p ns:o ; ns:q "lit", "lit2"@en .
//	<full> a ns:Type .           ('a' = rdf:type)
//	_:b ns:p 42 .                (integer/decimal/boolean shorthand)
//	# comments
//
// Blank-node property lists, collections, and multiline literals are not
// supported; the parser fails with a position on anything outside the
// subset rather than guessing.
func ParseTurtle(r io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := ParseTurtleInto(r, g); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseTurtleInto parses Turtle, appending to an existing graph.
func ParseTurtleInto(r io.Reader, g *Graph) error {
	br := bufio.NewReaderSize(r, 1<<16)
	data, err := io.ReadAll(br)
	if err != nil {
		return fmt.Errorf("rdf: %w", err)
	}
	p := &turtleParser{
		in:       string(data),
		g:        g,
		prefixes: map[string]string{"rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#"},
	}
	return p.run()
}

type turtleParser struct {
	in       string
	pos      int
	g        *Graph
	prefixes map[string]string
	base     string
}

func (p *turtleParser) errf(format string, args ...interface{}) error {
	line := 1 + strings.Count(p.in[:p.pos], "\n")
	return fmt.Errorf("rdf: turtle line %d: %s", line, fmt.Sprintf(format, args...))
}

// skipWS advances past whitespace and comments.
func (p *turtleParser) skipWS() {
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			p.pos++
		case c == '#':
			for p.pos < len(p.in) && p.in[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) eof() bool {
	p.skipWS()
	return p.pos >= len(p.in)
}

// peekWord returns the next bare word without consuming it.
func (p *turtleParser) peekWord() string {
	p.skipWS()
	j := p.pos
	for j < len(p.in) && !isTurtleBreak(p.in[j]) {
		j++
	}
	return p.in[p.pos:j]
}

func isTurtleBreak(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '<', '"', ';', ',', '.', '#':
		return true
	}
	return false
}

func (p *turtleParser) run() error {
	for !p.eof() {
		word := p.peekWord()
		switch {
		case word == "@prefix" || strings.EqualFold(word, "PREFIX"):
			p.pos += len(word)
			if err := p.parsePrefix(word == "@prefix"); err != nil {
				return err
			}
		case word == "@base" || strings.EqualFold(word, "BASE"):
			p.pos += len(word)
			p.skipWS()
			iri, err := p.parseIRIRef()
			if err != nil {
				return err
			}
			p.base = iri
			if word == "@base" {
				if err := p.expectDot(); err != nil {
					return err
				}
			}
		default:
			if err := p.parseStatement(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *turtleParser) parsePrefix(requireDot bool) error {
	p.skipWS()
	j := p.pos
	for j < len(p.in) && p.in[j] != ':' {
		if isTurtleBreak(p.in[j]) {
			return p.errf("malformed prefix name")
		}
		j++
	}
	if j >= len(p.in) {
		return p.errf("malformed prefix declaration")
	}
	name := p.in[p.pos:j]
	p.pos = j + 1
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	if requireDot {
		return p.expectDot()
	}
	return nil
}

func (p *turtleParser) expectDot() error {
	p.skipWS()
	if p.pos >= len(p.in) || p.in[p.pos] != '.' {
		return p.errf("expected '.'")
	}
	p.pos++
	return nil
}

// parseStatement parses subject predicateObjectList '.'.
func (p *turtleParser) parseStatement() error {
	subj, err := p.parseTerm(false)
	if err != nil {
		return err
	}
	if subj.Kind == Literal {
		return p.errf("literal subject")
	}
	for {
		pred, err := p.parsePredicateTerm()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseTerm(true)
			if err != nil {
				return err
			}
			p.g.Add(subj, pred, obj)
			p.skipWS()
			if p.pos < len(p.in) && p.in[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		p.skipWS()
		if p.pos < len(p.in) && p.in[p.pos] == ';' {
			p.pos++
			p.skipWS()
			// A dangling ';' before '.' is legal Turtle.
			if p.pos < len(p.in) && p.in[p.pos] == '.' {
				break
			}
			continue
		}
		break
	}
	return p.expectDot()
}

func (p *turtleParser) parsePredicateTerm() (Term, error) {
	p.skipWS()
	if p.peekWord() == "a" {
		p.pos += 1
		return NewIRI(RDFType), nil
	}
	t, err := p.parseTerm(false)
	if err != nil {
		return Term{}, err
	}
	if t.Kind != IRI {
		return Term{}, p.errf("predicate must be an IRI")
	}
	return t, nil
}

// parseIRIRef parses <...> applying @base to relative IRIs.
func (p *turtleParser) parseIRIRef() (string, error) {
	p.skipWS()
	if p.pos >= len(p.in) || p.in[p.pos] != '<' {
		return "", p.errf("expected <iri>")
	}
	j := strings.IndexByte(p.in[p.pos:], '>')
	if j < 0 {
		return "", p.errf("unterminated IRI")
	}
	iri := p.in[p.pos+1 : p.pos+j]
	p.pos += j + 1
	if p.base != "" && !strings.Contains(iri, "://") {
		iri = p.base + iri
	}
	return iri, nil
}

// parseTerm parses a subject or object term.
func (p *turtleParser) parseTerm(allowLiteral bool) (Term, error) {
	p.skipWS()
	if p.pos >= len(p.in) {
		return Term{}, p.errf("unexpected end of input")
	}
	c := p.in[p.pos]
	switch {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case c == '_':
		if p.pos+1 >= len(p.in) || p.in[p.pos+1] != ':' {
			return Term{}, p.errf("malformed blank node")
		}
		j := p.pos + 2
		for j < len(p.in) && !isTurtleBreak(p.in[j]) {
			j++
		}
		label := p.in[p.pos+2 : j]
		if label == "" {
			return Term{}, p.errf("empty blank node label")
		}
		p.pos = j
		return NewBlank(label), nil
	case c == '"':
		if !allowLiteral {
			return Term{}, p.errf("literal not allowed here")
		}
		return p.parseLiteralTerm()
	default:
		word := p.peekWord()
		if word == "" {
			return Term{}, p.errf("unexpected character %q", c)
		}
		// Numeric / boolean shorthand.
		if allowLiteral {
			if word == "true" || word == "false" {
				p.pos += len(word)
				return NewTypedLiteral(word, "http://www.w3.org/2001/XMLSchema#boolean"), nil
			}
			if word[0] >= '0' && word[0] <= '9' || (word[0] == '-' || word[0] == '+') && len(word) > 1 {
				p.pos += len(word)
				dt := "http://www.w3.org/2001/XMLSchema#integer"
				if strings.ContainsAny(word, ".eE") {
					dt = "http://www.w3.org/2001/XMLSchema#decimal"
				}
				return NewTypedLiteral(word, dt), nil
			}
		}
		// Prefixed name.
		i := strings.IndexByte(word, ':')
		if i < 0 {
			return Term{}, p.errf("cannot parse term %q", word)
		}
		base, ok := p.prefixes[word[:i]]
		if !ok {
			return Term{}, p.errf("undeclared prefix %q", word[:i])
		}
		p.pos += len(word)
		return NewIRI(base + word[i+1:]), nil
	}
}

// parseLiteralTerm parses "..." with optional @lang or ^^type.
func (p *turtleParser) parseLiteralTerm() (Term, error) {
	// Reuse the N-Triples literal machinery on the rest of the input.
	term, rest, err := parseTerm(p.in[p.pos:])
	if err != nil {
		return Term{}, p.errf("%v", err)
	}
	consumed := len(p.in) - p.pos - len(rest)
	p.pos += consumed
	if term.Kind == Literal && term.Datatype == "" && term.Lang == "" {
		// Check for ^^prefixed:type which parseTerm does not handle.
		if strings.HasPrefix(rest, "^^") && !strings.HasPrefix(rest, "^^<") {
			p.pos += 2
			dt, err := p.parseTerm(false)
			if err != nil {
				return Term{}, err
			}
			if dt.Kind != IRI {
				return Term{}, p.errf("datatype must be an IRI")
			}
			return NewTypedLiteral(term.Value, dt.Value), nil
		}
	}
	return term, nil
}

// DetectFormat guesses the serialization of an RDF file from its name:
// ".ttl"/".turtle" parse as Turtle, everything else as N-Triples (which is
// also valid Turtle, so misdetection of .nt files is harmless).
func DetectFormat(filename string) string {
	lower := strings.ToLower(filename)
	if strings.HasSuffix(lower, ".ttl") || strings.HasSuffix(lower, ".turtle") {
		return "turtle"
	}
	return "ntriples"
}

// ParseFile parses a reader as the named format ("turtle" or "ntriples").
func ParseFile(r io.Reader, format string) (*Graph, error) {
	if format == "turtle" {
		return ParseTurtle(r)
	}
	return ParseNTriples(r)
}
