package rdf

import (
	"encoding/binary"
	"math"
	"math/bits"
	"sort"
)

// SOPairLess orders pairs by (S, O), the canonical sub-partition order.
func SOPairLess(a, b SOPair) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	return a.O < b.O
}

// PairBlock is an immutable container of (subject, object) ID pairs — the
// resident representation of one decoded sub-partition. A block is either
// raw (a plain []SOPair) or packed, and the two are interchangeable
// through ForEach / Materialize. Packed blocks are what the sub-partition
// LRU holds by default: they are where the resident-set reduction comes
// from.
//
// The packed stream starts with a one-byte format tag:
//
//   - tagDelta: a delta-varint stream over (S, O)-sorted pairs — per pair
//     uvarint(ΔS), then the object as uvarint(ΔO) while the subject
//     repeats (objects are non-decreasing within a subject) or as an
//     absolute uvarint when it changes. ~2–3 bytes per pair.
//   - tagEF: Elias-Fano over the monotone keys
//     k = (S-minS)·range(O) + (O-minO). Each key costs l low bits stored
//     verbatim plus ~2 high bits unary, with l = ⌈log₂(u/n)⌉ — about
//     2 + log₂(universe/n) bits per pair, typically 1.5–2.5 bytes.
//
// PackPairs sizes both formats exactly (cheap counting passes) and
// builds only the smaller, so degenerate shapes (tiny blocks, huge
// sparse ID spaces) never regress past the varint stream.
//
// The zero value is an empty block.
type PairBlock struct {
	n      int
	raw    []SOPair
	packed []byte
}

const (
	tagDelta = 1
	tagEF    = 2
)

// RawPairs wraps an existing pair slice as a block without copying or
// compressing. The caller must not mutate pairs afterwards.
func RawPairs(pairs []SOPair) PairBlock {
	return PairBlock{n: len(pairs), raw: pairs}
}

// PackPairs compresses pairs into a packed block. Input is expected in
// (S, O) order — the order ReadSubPartition produces — and is copied and
// sorted first if it is not. The input slice itself is never mutated.
func PackPairs(pairs []SOPair) PairBlock {
	if len(pairs) == 0 {
		return PairBlock{}
	}
	if !sort.SliceIsSorted(pairs, func(i, j int) bool { return SOPairLess(pairs[i], pairs[j]) }) {
		sorted := make([]SOPair, len(pairs))
		copy(sorted, pairs)
		sort.Slice(sorted, func(i, j int) bool { return SOPairLess(sorted[i], sorted[j]) })
		pairs = sorted
	}
	// Size both formats exactly (cheap counting passes), then build only
	// the winner.
	var buf []byte
	if efSize, ok := efSizeOf(pairs); ok && efSize < deltaSizeOf(pairs) {
		buf = packEF(pairs)
	} else {
		buf = packDelta(pairs)
	}
	// Trim excess capacity so Bytes() reflects what the block actually
	// pins.
	if cap(buf)-len(buf) > len(buf)/8 {
		buf = append(make([]byte, 0, len(buf)), buf...)
	}
	return PairBlock{n: len(pairs), packed: buf}
}

// packDelta encodes sorted pairs as the tagged delta-varint stream.
func packDelta(pairs []SOPair) []byte {
	buf := make([]byte, 1, len(pairs)*3)
	buf[0] = tagDelta
	var prevS, prevO ID
	for i, p := range pairs {
		ds := p.S
		if i > 0 {
			ds = p.S - prevS
		}
		buf = binary.AppendUvarint(buf, uint64(ds))
		if i > 0 && ds == 0 {
			buf = binary.AppendUvarint(buf, uint64(p.O-prevO))
		} else {
			buf = binary.AppendUvarint(buf, uint64(p.O))
		}
		prevS, prevO = p.S, p.O
	}
	return buf
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// deltaSizeOf returns the exact byte size packDelta would produce,
// without building the stream.
func deltaSizeOf(pairs []SOPair) int {
	sz := 1
	var prevS, prevO ID
	for i, p := range pairs {
		ds := p.S
		if i > 0 {
			ds = p.S - prevS
		}
		sz += uvarintLen(uint64(ds))
		if i > 0 && ds == 0 {
			sz += uvarintLen(uint64(p.O - prevO))
		} else {
			sz += uvarintLen(uint64(p.O))
		}
		prevS, prevO = p.S, p.O
	}
	return sz
}

// efBounds computes the Elias-Fano parameters for sorted pairs: the key
// is k = (S-minS)·orange + (O-minO), strictly increasing in (S, O)
// order, split into l explicit low bits and a unary-coded high part. ok
// is false when the key universe would overflow uint64 (never for
// realistic ID ranges).
func efBounds(pairs []SOPair) (minS, minO ID, orange, kmax uint64, l int, ok bool) {
	n := len(pairs)
	minS = pairs[0].S
	maxS := pairs[n-1].S
	minO, maxO := pairs[0].O, pairs[0].O
	for _, p := range pairs {
		if p.O < minO {
			minO = p.O
		}
		if p.O > maxO {
			maxO = p.O
		}
	}
	orange = uint64(maxO-minO) + 1
	sspan := uint64(maxS - minS)
	if sspan > 0 && orange > (math.MaxUint64-uint64(maxO-minO))/sspan {
		return 0, 0, 0, 0, 0, false
	}
	kmax = sspan*orange + uint64(maxO-minO)
	if kmax == math.MaxUint64 {
		return 0, 0, 0, 0, 0, false
	}
	u := kmax + 1
	for l < 64 && (u>>uint(l)) > uint64(n) {
		l++
	}
	return minS, minO, orange, kmax, l, true
}

// efSizeOf returns the exact byte size packEF would produce.
func efSizeOf(pairs []SOPair) (int, bool) {
	minS, minO, orange, kmax, l, ok := efBounds(pairs)
	if !ok {
		return 0, false
	}
	n := len(pairs)
	lowBytes := (n*l + 7) / 8
	highBytes := int((kmax>>uint(l))+uint64(n)+7) / 8
	return 1 + uvarintLen(uint64(minS)) + uvarintLen(uint64(minO)) +
		uvarintLen(orange) + 1 + lowBytes + highBytes, true
}

// packEF encodes sorted pairs as the tagged Elias-Fano stream. Returns
// nil when the key universe would overflow uint64.
func packEF(pairs []SOPair) []byte {
	minS, minO, orange, kmax, l, ok := efBounds(pairs)
	if !ok {
		return nil
	}
	n := len(pairs)
	lowBytes := (n*l + 7) / 8
	// The bit position of element i's one in the high array is
	// (k_i >> l) + i, so the array spans (kmax>>l) + n bits.
	highBytes := int((kmax>>uint(l))+uint64(n)+7) / 8

	buf := make([]byte, 0, 1+4*binary.MaxVarintLen64+1+lowBytes+highBytes)
	buf = append(buf, tagEF)
	buf = binary.AppendUvarint(buf, uint64(minS))
	buf = binary.AppendUvarint(buf, uint64(minO))
	buf = binary.AppendUvarint(buf, orange)
	buf = append(buf, byte(l))
	head := len(buf)
	buf = append(buf, make([]byte, lowBytes+highBytes)...)
	low := buf[head : head+lowBytes]
	high := buf[head+lowBytes:]
	mask := uint64(1)<<uint(l) - 1
	if l == 64 {
		mask = math.MaxUint64
	}
	for i, p := range pairs {
		k := uint64(p.S-minS)*orange + uint64(p.O-minO)
		if l > 0 {
			setBits(low, i*l, k&mask, l)
		}
		pos := (k >> uint(l)) + uint64(i)
		high[pos>>3] |= 1 << (pos & 7)
	}
	return buf
}

// setBits writes the low `width` bits of v into dst at bit offset bitPos,
// LSB first. dst must be zeroed at the target positions.
func setBits(dst []byte, bitPos int, v uint64, width int) {
	for width > 0 {
		idx, off := bitPos>>3, bitPos&7
		take := 8 - off
		if take > width {
			take = width
		}
		dst[idx] |= byte(v) << uint(off)
		v >>= uint(take)
		bitPos += take
		width -= take
	}
}

// getBits reads `width` bits from src at bit offset bitPos, LSB first.
func getBits(src []byte, bitPos, width int) uint64 {
	var v uint64
	sh := 0
	for width > 0 {
		idx, off := bitPos>>3, bitPos&7
		take := 8 - off
		if take > width {
			take = width
		}
		v |= uint64(src[idx]>>uint(off)&byte(1<<uint(take)-1)) << uint(sh)
		sh += take
		bitPos += take
		width -= take
	}
	return v
}

// Len returns the number of pairs in the block.
func (b PairBlock) Len() int { return b.n }

// Packed reports whether the block holds the compressed representation.
func (b PairBlock) Packed() bool { return b.packed != nil }

// Bytes returns the resident payload size of the block: the packed
// stream for packed blocks, 8 bytes per pair for raw ones.
func (b PairBlock) Bytes() int {
	if b.packed != nil {
		return len(b.packed)
	}
	return b.n * 8
}

// RawBytes returns what the block would occupy uncompressed (8 bytes per
// pair), regardless of representation.
func (b PairBlock) RawBytes() int { return b.n * 8 }

// ForEach calls fn for every pair in order without materializing a slice.
func (b PairBlock) ForEach(fn func(SOPair)) {
	if b.raw != nil {
		for _, p := range b.raw {
			fn(p)
		}
		return
	}
	if b.n == 0 {
		return
	}
	switch b.packed[0] {
	case tagEF:
		b.forEachEF(fn)
	default:
		b.forEachDelta(fn)
	}
}

func (b PairBlock) forEachDelta(fn func(SOPair)) {
	buf := b.packed[1:]
	var prevS, prevO ID
	for i := 0; i < b.n; i++ {
		ds, k := binary.Uvarint(buf)
		buf = buf[k:]
		dv, k := binary.Uvarint(buf)
		buf = buf[k:]
		s := prevS + ID(ds)
		o := ID(dv)
		if i > 0 && ds == 0 {
			o = prevO + ID(dv)
		}
		fn(SOPair{S: s, O: o})
		prevS, prevO = s, o
	}
}

func (b PairBlock) forEachEF(fn func(SOPair)) {
	buf := b.packed[1:]
	mins, k := binary.Uvarint(buf)
	buf = buf[k:]
	mino, k := binary.Uvarint(buf)
	buf = buf[k:]
	orange, k := binary.Uvarint(buf)
	buf = buf[k:]
	l := int(buf[0])
	buf = buf[1:]
	lowBytes := (b.n*l + 7) / 8
	low, high := buf[:lowBytes], buf[lowBytes:]
	minS, minO := ID(mins), ID(mino)
	lmask := uint64(1)<<uint(l) - 1
	// Keys are non-decreasing, so k/orange (the subject offset) can be
	// tracked incrementally: most hops fit a few subtractions, and only
	// large jumps pay a hardware division to resync.
	var sRel, sBase uint64
	bitPos := 0
	i := 0
	for bytePos, bv := range high {
		for bv != 0 {
			pos := bytePos*8 + bits.TrailingZeros8(bv)
			bv &= bv - 1
			key := uint64(pos-i) << uint(l)
			if l > 0 {
				// A 64-bit window at the byte holding bitPos covers all
				// l ≤ 57 low bits in one unaligned load; the generic
				// bit-loop handles the buffer tail and oversized l.
				if idx := bitPos >> 3; idx+8 <= len(low) && l <= 57 {
					w := binary.LittleEndian.Uint64(low[idx:])
					key |= w >> uint(bitPos&7) & lmask
				} else {
					key |= getBits(low, bitPos, l)
				}
				bitPos += l
			}
			d := key - sBase
			if d >= orange {
				if d < orange*8 {
					for d >= orange {
						sRel++
						sBase += orange
						d -= orange
					}
				} else {
					sRel = key / orange
					sBase = sRel * orange
					d = key - sBase
				}
			}
			fn(SOPair{S: minS + ID(sRel), O: minO + ID(d)})
			i++
			if i == b.n {
				return
			}
		}
	}
}

// AppendTo decodes the block onto dst and returns the extended slice.
func (b PairBlock) AppendTo(dst []SOPair) []SOPair {
	if b.raw != nil {
		return append(dst, b.raw...)
	}
	if cap(dst)-len(dst) < b.n {
		grown := make([]SOPair, len(dst), len(dst)+b.n)
		copy(grown, dst)
		dst = grown
	}
	b.ForEach(func(p SOPair) { dst = append(dst, p) })
	return dst
}

// Materialize returns the pairs as a fresh slice (or the shared raw slice
// for raw blocks; callers must treat the result as read-only).
func (b PairBlock) Materialize() []SOPair {
	if b.raw != nil {
		return b.raw
	}
	return b.AppendTo(make([]SOPair, 0, b.n))
}
