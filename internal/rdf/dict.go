package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// ID is a dense dictionary identifier for a term. IDs start at 0 and grow
// contiguously in insertion order, so they can index slices directly.
type ID = uint32

// NoID is returned by lookups for terms absent from the dictionary.
const NoID ID = ^ID(0)

// Dict is a bidirectional mapping between terms (keyed by their N-Triples
// surface form) and dense uint32 IDs. It is safe for concurrent readers
// interleaved with a single writer when guarded by the embedded mutex via
// Encode; Lookup and Term take read locks only.
type Dict struct {
	mu    sync.RWMutex
	byKey map[string]ID
	terms []Term
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byKey: make(map[string]ID)}
}

// Len returns the number of distinct terms interned.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// Encode interns the term and returns its ID, allocating a new ID on first
// sight.
func (d *Dict) Encode(t Term) ID {
	key := t.String()
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.byKey[key]; ok {
		return id
	}
	id = ID(len(d.terms))
	d.terms = append(d.terms, t)
	d.byKey[key] = id
	return id
}

// Lookup returns the ID of a term, or NoID if it has never been interned.
func (d *Dict) Lookup(t Term) ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id, ok := d.byKey[t.String()]; ok {
		return id
	}
	return NoID
}

// LookupIRI is shorthand for Lookup(NewIRI(iri)).
func (d *Dict) LookupIRI(iri string) ID { return d.Lookup(NewIRI(iri)) }

// EncodeIRI is shorthand for Encode(NewIRI(iri)).
func (d *Dict) EncodeIRI(iri string) ID { return d.Encode(NewIRI(iri)) }

// Term returns the term for an ID. It panics on out-of-range IDs, which
// always indicate a programming error (IDs only come from this dictionary).
func (d *Dict) Term(id ID) Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms[id]
}

// TermString returns the N-Triples surface form for an ID.
func (d *Dict) TermString(id ID) string { return d.Term(id).String() }

// WriteTo serializes the dictionary as one surface-form per line, preceded
// by a count header. IDs are implicit in line order.
func (d *Dict) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "%d\n", len(d.terms))
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, t := range d.terms {
		k, err = fmt.Fprintf(bw, "%s\n", t.String())
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadDict parses a dictionary previously written by WriteTo.
func ReadDict(r io.Reader) (*Dict, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("rdf: dict header: %w", err)
	}
	count, err := strconv.Atoi(strings.TrimSpace(header))
	if err != nil || count < 0 {
		return nil, fmt.Errorf("rdf: bad dict count %q", strings.TrimSpace(header))
	}
	d := &Dict{
		byKey: make(map[string]ID, count),
		terms: make([]Term, 0, count),
	}
	for i := 0; i < count; i++ {
		line, err := br.ReadString('\n')
		if err != nil && !(err == io.EOF && line != "") {
			return nil, fmt.Errorf("rdf: dict line %d: %w", i, err)
		}
		line = strings.TrimRight(line, "\n")
		t, rest, err := parseTerm(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: dict line %d: %w", i, err)
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("rdf: dict line %d: trailing data %q", i, rest)
		}
		d.byKey[t.String()] = ID(len(d.terms))
		d.terms = append(d.terms, t)
	}
	return d, nil
}
