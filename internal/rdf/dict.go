package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// ID is a dense dictionary identifier for a term. IDs start at 0 and grow
// contiguously in insertion order, so they can index slices directly.
type ID = uint32

// NoID is returned by lookups for terms absent from the dictionary.
const NoID ID = ^ID(0)

// Dict is a bidirectional mapping between terms (keyed by their N-Triples
// surface form) and dense uint32 IDs. It is safe for concurrent readers
// interleaved with a single writer when guarded by the embedded mutex via
// Encode; Lookup and Term take read locks only.
//
// The dictionary is append-only: IDs are never reassigned or removed, so a
// (length, signature) pair taken at any point identifies an immutable prefix
// that later growth only extends. Snapshot captures such a prefix as a
// DictView.
type Dict struct {
	mu        sync.RWMutex
	byKey     map[string]ID
	terms     []Term
	sig       uint64 // rolling FNV-64a over surface forms, in ID order
	termBytes int64  // total surface-form bytes interned
}

const (
	dictFNVOffset = 14695981039346656037
	dictFNVPrime  = 1099511628211
)

func foldSig(h uint64, key string) uint64 {
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= dictFNVPrime
	}
	h ^= '\n'
	h *= dictFNVPrime
	return h
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byKey: make(map[string]ID), sig: dictFNVOffset}
}

// Len returns the number of distinct terms interned.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// Encode interns the term and returns its ID, allocating a new ID on first
// sight.
func (d *Dict) Encode(t Term) ID {
	key := t.String()
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.byKey[key]; ok {
		return id
	}
	id = ID(len(d.terms))
	d.terms = append(d.terms, t)
	d.byKey[key] = id
	d.sig = foldSig(d.sig, key)
	d.termBytes += int64(len(key))
	return id
}

// Sig returns the rolling content signature over all interned surface
// forms in ID order. Equal signatures at equal lengths mean the two
// dictionaries assign identical IDs to identical terms.
func (d *Dict) Sig() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.sig
}

// PrefixSig recomputes the content signature of the first n terms. It is
// O(total surface bytes) and intended for resume-time validation, where a
// checkpoint taken at length n must match the prefix of a possibly larger
// current dictionary.
func (d *Dict) PrefixSig(n int) uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if n < 0 || n > len(d.terms) {
		return 0
	}
	if n == len(d.terms) {
		return d.sig
	}
	h := uint64(dictFNVOffset)
	for _, t := range d.terms[:n] {
		h = foldSig(h, t.String())
	}
	return h
}

// ResidentBytes estimates the in-memory footprint of the dictionary:
// surface forms are held twice (map key and term), plus fixed per-entry
// overhead for the map bucket, term struct, and slice slot.
func (d *Dict) ResidentBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return 2*d.termBytes + int64(len(d.terms))*48
}

// Snapshot captures the current (length, signature) prefix as an immutable
// DictView. The view keeps serving lookups from the live dictionary but
// caps visible IDs at the snapshot length, so later appends by a maintainer
// never leak into an older epoch.
func (d *Dict) Snapshot() *DictView {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return &DictView{d: d, n: len(d.terms), sig: d.sig}
}

// DictView is an immutable prefix of a Dict, pinned to the (length,
// signature) observed at Snapshot time. Layout epochs hold a DictView so
// that ID→term decoding and term→ID lookups are stable for the lifetime of
// the epoch even while the shared dictionary keeps growing.
type DictView struct {
	d   *Dict
	n   int
	sig uint64
}

// Len returns the number of terms visible through the view.
func (v *DictView) Len() int { return v.n }

// Sig returns the content signature of the snapshotted prefix.
func (v *DictView) Sig() uint64 { return v.sig }

// Lookup returns the ID of a term, or NoID if the term is absent or was
// interned after the snapshot.
func (v *DictView) Lookup(t Term) ID {
	id := v.d.Lookup(t)
	if id == NoID || int(id) >= v.n {
		return NoID
	}
	return id
}

// LookupIRI is shorthand for Lookup(NewIRI(iri)).
func (v *DictView) LookupIRI(iri string) ID { return v.Lookup(NewIRI(iri)) }

// Term returns the term for an ID within the snapshot. It panics on IDs at
// or beyond the snapshot length: an epoch can only see IDs it produced.
func (v *DictView) Term(id ID) Term {
	if int(id) >= v.n {
		panic(fmt.Sprintf("rdf: id %d beyond dict snapshot of %d terms", id, v.n))
	}
	return v.d.Term(id)
}

// TermString returns the N-Triples surface form for an ID within the
// snapshot.
func (v *DictView) TermString(id ID) string { return v.Term(id).String() }

// Lookup returns the ID of a term, or NoID if it has never been interned.
func (d *Dict) Lookup(t Term) ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id, ok := d.byKey[t.String()]; ok {
		return id
	}
	return NoID
}

// LookupIRI is shorthand for Lookup(NewIRI(iri)).
func (d *Dict) LookupIRI(iri string) ID { return d.Lookup(NewIRI(iri)) }

// EncodeIRI is shorthand for Encode(NewIRI(iri)).
func (d *Dict) EncodeIRI(iri string) ID { return d.Encode(NewIRI(iri)) }

// Term returns the term for an ID. It panics on out-of-range IDs, which
// always indicate a programming error (IDs only come from this dictionary).
func (d *Dict) Term(id ID) Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms[id]
}

// TermString returns the N-Triples surface form for an ID.
func (d *Dict) TermString(id ID) string { return d.Term(id).String() }

// WriteTo serializes the dictionary as one surface-form per line, preceded
// by a count header. IDs are implicit in line order.
func (d *Dict) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "%d\n", len(d.terms))
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, t := range d.terms {
		k, err = fmt.Fprintf(bw, "%s\n", t.String())
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadDict parses a dictionary previously written by WriteTo.
func ReadDict(r io.Reader) (*Dict, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("rdf: dict header: %w", err)
	}
	count, err := strconv.Atoi(strings.TrimSpace(header))
	if err != nil || count < 0 {
		return nil, fmt.Errorf("rdf: bad dict count %q", strings.TrimSpace(header))
	}
	d := &Dict{
		byKey: make(map[string]ID, count),
		terms: make([]Term, 0, count),
		sig:   dictFNVOffset,
	}
	for i := 0; i < count; i++ {
		line, err := br.ReadString('\n')
		if err != nil && !(err == io.EOF && line != "") {
			return nil, fmt.Errorf("rdf: dict line %d: %w", i, err)
		}
		line = strings.TrimRight(line, "\n")
		t, rest, err := parseTerm(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: dict line %d: %w", i, err)
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("rdf: dict line %d: trailing data %q", i, rest)
		}
		key := t.String()
		d.byKey[key] = ID(len(d.terms))
		d.terms = append(d.terms, t)
		d.sig = foldSig(d.sig, key)
		d.termBytes += int64(len(key))
	}
	return d, nil
}
