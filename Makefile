GO ?= go

.PHONY: check build vet fmt test race bench

# check is the full gate: build, vet, formatting, and the race-enabled
# test suite. CI and pre-commit should run `make check`.
check: build vet fmt race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
