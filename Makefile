GO ?= go

# Minimum statement coverage (%) for internal/obs enforced by `make cover`.
OBS_COVER_MIN ?= 80

.PHONY: check build vet fmt test race bench bench-json cover

# check is the full gate: build, vet, formatting, and the race-enabled
# test suite. CI and pre-commit should run `make check`.
check: build vet fmt race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-json writes machine-readable per-query trajectories (step
# latencies, coverage curve, exact-answer time) as bench/BENCH_<ds>.json.
bench-json:
	$(GO) run ./cmd/pingbench -exp none -json-out bench -datasets uniprot,shop -scale 0.5

# cover enforces a minimum statement coverage on the observability layer
# (the rest of the suite is gated by correctness properties, not lines).
cover:
	$(GO) test -coverprofile=coverage.out ./internal/obs/
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/obs coverage: $$total% (min $(OBS_COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(OBS_COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
		{ echo "coverage below minimum"; exit 1; }
