GO ?= go

# Minimum statement coverage (%) for internal/obs enforced by `make cover`.
OBS_COVER_MIN ?= 80

.PHONY: check build vet fmt test race bench bench-json bench-compare bench-gate cover workload-report advise-report prof-report fuzz noskip lint

# check is the full gate: build, vet, formatting, the race-enabled test
# suite, the coverage floor, the no-skip guard on the SLO and wide-event
# suites, and the benchmark regression gate. CI and pre-commit should
# run `make check`.
check: build vet fmt race cover noskip bench-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz hammers the durable-cursor decoders (client tokens and on-disk
# records): untrusted bytes must never panic, and accepted inputs must
# round-trip canonically. Go allows one -fuzz pattern per invocation,
# so each target gets its own run.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzParseToken$$' -fuzztime=$(FUZZTIME) ./internal/cursor/
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeRecord$$' -fuzztime=$(FUZZTIME) ./internal/cursor/

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-json writes machine-readable per-query trajectories (step
# latencies, coverage curve, exact-answer time) as bench/BENCH_<ds>.json,
# and captures CPU+heap profiles of the run into bench/profiles (render
# them with `make prof-report`).
bench-json:
	$(GO) run ./cmd/pingbench -exp none -json-out bench -datasets uniprot,shop -scale 0.5 \
		-profile-dir bench/profiles -profile-interval 10s -profile-cpu-window 3s

# bench-compare benchmarks HEAD against the uncommitted working tree:
# the dirty changes are stashed, the baseline run recorded, the stash
# popped, the candidate run recorded, and the per-benchmark deltas
# printed side by side. Tune the benchmark subset with BENCH (regexp)
# and repetitions with BENCHTIME.
BENCH ?= .
BENCHTIME ?= 3x
bench-compare:
	@if git diff --quiet && git diff --cached --quiet; then \
		echo "working tree is clean — nothing to compare against HEAD"; exit 1; \
	fi
	@echo "== baseline (HEAD) =="
	@git stash push --quiet --include-untracked -- ':!bench-*.txt' && \
	{ $(GO) test -bench='$(BENCH)' -benchtime=$(BENCHTIME) -run='^$$' . | tee bench-baseline.txt; \
	  git stash pop --quiet; }
	@echo "== candidate (working tree) =="
	@$(GO) test -bench='$(BENCH)' -benchtime=$(BENCHTIME) -run='^$$' . | tee bench-candidate.txt
	@echo "== delta (ns/op, candidate vs baseline) =="
	@awk 'FNR==NR { if ($$1 ~ /^Benchmark/) base[$$1]=$$3; next } \
	  $$1 ~ /^Benchmark/ { \
	    if ($$1 in base && base[$$1]+0 > 0) \
	      printf "%-60s %12.0f -> %12.0f  (%+.1f%%)\n", $$1, base[$$1], $$3, 100*($$3-base[$$1])/base[$$1]; \
	    else printf "%-60s %25s %12.0f  (new)\n", $$1, "", $$3 }' \
	  bench-baseline.txt bench-candidate.txt

# bench-gate is the perf regression gate on the PQA-critical kernels:
# incremental PQA, pair-block pack/decode, dictionary lookup and
# resident footprint, the join and distinct kernels, and columnar Auto
# selection. Any of them slowing down by more than GATE_TOLERANCE
# percent (best-of-GATE_COUNT ns/op) fails the build. The baseline is
# measured from HEAD on first run — dirty changes are stashed around
# it — and cached in bench-gate-baseline.txt, which is git-ignored so
# every machine calibrates against itself rather than numbers from
# foreign hardware. Delete the file to re-baseline. On a clean tree
# (CI) baseline and candidate coincide, and the gate degrades into a
# smoke run that keeps the benchmarks compiling and finishing.
GATE_BENCH ?= BenchmarkPQAIncremental|BenchmarkPairBlock|BenchmarkDictLookup|BenchmarkDictResidentFootprint|BenchmarkEngineJoin|BenchmarkRelationDistinct|BenchmarkAutoEncode|BenchmarkColumnarEncodeDecode
GATE_TOLERANCE ?= 20
GATE_COUNT ?= 3
GATE_BENCHTIME ?= 50x
GATE_PKGS ?= . ./internal/columnar/
bench-gate:
	@if [ ! -f bench-gate-baseline.txt ]; then \
		echo "== bench-gate: no baseline, measuring HEAD =="; \
		if git diff --quiet && git diff --cached --quiet; then \
			$(GO) test -bench='$(GATE_BENCH)' -benchtime=$(GATE_BENCHTIME) -count=$(GATE_COUNT) -run='^$$' $(GATE_PKGS) > bench-gate-baseline.txt; \
		else \
			git stash push --quiet --include-untracked -- ':!bench-gate-*.txt' && \
			{ $(GO) test -bench='$(GATE_BENCH)' -benchtime=$(GATE_BENCHTIME) -count=$(GATE_COUNT) -run='^$$' $(GATE_PKGS) > bench-gate-baseline.txt || true; \
			  git stash pop --quiet; }; \
		fi; \
	fi
	@echo "== bench-gate: candidate (working tree) =="
	@$(GO) test -bench='$(GATE_BENCH)' -benchtime=$(GATE_BENCHTIME) -count=$(GATE_COUNT) -run='^$$' $(GATE_PKGS) > bench-gate-candidate.txt
	@awk -v tol=$(GATE_TOLERANCE) ' \
	  FNR==NR { if ($$1 ~ /^Benchmark/ && (!($$1 in base) || $$3+0 < base[$$1]+0)) base[$$1]=$$3; next } \
	  $$1 ~ /^Benchmark/ { if (!($$1 in cand) || $$3+0 < cand[$$1]+0) cand[$$1]=$$3 } \
	  END { bad=0; \
	    for (b in cand) { \
	      if (!(b in base) || base[b]+0 <= 0) { printf "%-64s %38.0f  (new)\n", b, cand[b]; continue } \
	      d = 100*(cand[b]-base[b])/base[b]; \
	      printf "%-64s %12.0f -> %12.0f  (%+.1f%%)\n", b, base[b], cand[b], d; \
	      if (d > tol+0) bad++ } \
	    if (bad) { printf "bench-gate: %d benchmark(s) regressed more than %d%%\n", bad, tol; exit 1 } \
	    print "bench-gate: no regression beyond " tol "%" }' \
	  bench-gate-baseline.txt bench-gate-candidate.txt

# workload-report prints the top-N query fingerprints of a workload
# snapshot (pingd -workload-out, or /workload?format=ndjson).
TOP ?= 10
SNAPSHOT ?= workload.ndjson
workload-report:
	$(GO) run ./cmd/pingworkload -in $(SNAPSHOT) -top $(TOP)

# prof-report renders a continuous-profiling capture directory (written
# by pingd/pingbench -profile-dir, default the bench-json capture) as
# the top-N query fingerprints by attributed CPU.
PROFDIR ?= bench/profiles
prof-report:
	$(GO) run ./cmd/pingprof -dir $(PROFDIR) -top $(TOP)

# advise-report analyzes a workload snapshot (pingd -workload-out, or
# /workload?format=ndjson) against a persisted store and prints the
# layout advisor's plan: cold-level merges, join reductions, and the
# estimated p95 steps-to-first delta. Dry run — rerun cmd/pingadvise
# with -apply to restructure the store in place.
STORE ?= store
advise-report:
	$(GO) run ./cmd/pingadvise -store $(STORE) -workload $(SNAPSHOT) -top $(TOP)

# noskip guards the SLO and wide-event suites: they back the
# observability acceptance criteria, so a skipped test (an overeager
# t.Skip gate, a renamed helper) must fail the build, not silently pass.
noskip:
	@out="$$($(GO) test -v -count=1 ./internal/obs/slo/ && \
	         $(GO) test -v -count=1 -run 'EventLog|WideEvent|SLO' ./internal/obs/ ./cmd/pingd/)" || \
		{ echo "$$out" | tail -40; exit 1; }; \
	if echo "$$out" | grep -q -- '--- SKIP'; then \
		echo "SLO/wide-event tests were skipped:"; echo "$$out" | grep -- '--- SKIP'; exit 1; \
	fi; \
	if ! echo "$$out" | grep -q -- '--- PASS'; then \
		echo "no SLO/wide-event tests ran (test name pattern rot?)"; exit 1; \
	fi; \
	echo "slo/wide-event suites: all ran, none skipped"

# lint runs staticcheck and govulncheck when installed (CI installs
# both; locally they are optional extras on top of go vet).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping"; fi

# cover enforces a minimum statement coverage on the observability layer
# (the rest of the suite is gated by correctness properties, not lines).
# The profile lands under .cover/ so it can never be committed by a
# stray `git add .` (the directory is git-ignored).
COVERPROFILE ?= .cover/obs.out
cover:
	@mkdir -p $(dir $(COVERPROFILE))
	$(GO) test -coverprofile=$(COVERPROFILE) ./internal/obs/
	@total=$$($(GO) tool cover -func=$(COVERPROFILE) | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/obs coverage: $$total% (min $(OBS_COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(OBS_COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
		{ echo "coverage below minimum"; exit 1; }
